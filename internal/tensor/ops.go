package tensor

import (
	"fmt"
	"math"
)

// MatMul returns a[m,k] * b[k,n]. When tp is non-nil the backward pass
// accumulates dA += dC*B^T and dB += A^T*dC.
func MatMul(tp *Tape, a, b *Tensor) *Tensor {
	m, k := a.Rows(), a.Cols()
	k2, n := b.Rows(), b.Cols()
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %v x %v", a.Shape, b.Shape))
	}
	out := tp.alloc(m, n)
	mmNN(out.Data, a.Data, b.Data, m, k, n)
	tp.record(func() {
		g := out.Grad
		if g == nil {
			return
		}
		mmNT(a.ensureGrad(), g, b.Data, m, n, k)
		mmTN(b.ensureGrad(), a.Data, g, m, k, n)
	})
	return out
}

// MatMulBT returns a[m,k] * b[n,k]^T, i.e. the rows of a dotted with the rows
// of b. This is the natural form for PerfVec's predictor, where each row of b
// is one microarchitecture representation.
func MatMulBT(tp *Tape, a, b *Tensor) *Tensor {
	m, k := a.Rows(), a.Cols()
	n, k2 := b.Rows(), b.Cols()
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulBT shape mismatch %v x %v^T", a.Shape, b.Shape))
	}
	out := tp.alloc(m, n)
	mmNT(out.Data, a.Data, b.Data, m, k, n)
	tp.record(func() {
		g := out.Grad
		if g == nil {
			return
		}
		// dA += dC * B ; dB += dC^T * A
		mmNN(a.ensureGrad(), g, b.Data, m, n, k)
		mmTN(b.ensureGrad(), g, a.Data, m, n, k)
	})
	return out
}

// MatMulBTCat returns [x|h] * w^T without materializing the column
// concatenation of x[m,xc] and h[m,hc]: w[n, xc+hc] is treated as two column
// blocks and the leading-dimension-aware kernels run directly on the
// sub-views. This is the hot op of the recurrent cells (GRU/LSTM), where the
// seed built a fresh ConcatCols tensor every timestep of every layer.
func MatMulBTCat(tp *Tape, x, h, w *Tensor) *Tensor {
	m, xc := x.Rows(), x.Cols()
	hc := h.Cols()
	n, wc := w.Rows(), w.Cols()
	if h.Rows() != m || wc != xc+hc {
		panic(fmt.Sprintf("tensor: MatMulBTCat shape mismatch [%v|%v] x %v^T", x.Shape, h.Shape, w.Shape))
	}
	out := tp.alloc(m, n)
	gemmNT(out.Data, x.Data, w.Data, m, xc, n, xc, wc, n)
	gemmNT(out.Data, h.Data, w.Data[xc:], m, hc, n, hc, wc, n)
	tp.record(func() {
		g := out.Grad
		if g == nil {
			return
		}
		gx, gh, gw := x.ensureGrad(), h.ensureGrad(), w.ensureGrad()
		// dX += dC * W[:, :xc] ; dH += dC * W[:, xc:]
		gemmNN(gx, g, w.Data, m, n, xc, n, wc, xc)
		gemmNN(gh, g, w.Data[xc:], m, n, hc, n, wc, hc)
		// dW[:, :xc] += dC^T * X ; dW[:, xc:] += dC^T * H
		gemmTN(gw, g, x.Data, m, n, xc, n, xc, wc)
		gemmTN(gw[xc:], g, h.Data, m, n, hc, n, hc, wc)
	})
	return out
}

// MatMulBTCols returns a[:, from:to] * b[:, from:to]^T without materializing
// the column slices; gradients flow back into the corresponding columns of a
// and b. This is the attention-score form: per-head Q*K^T on column
// sub-ranges of the full projections.
func MatMulBTCols(tp *Tape, a, b *Tensor, from, to int) *Tensor {
	m, ac := a.Rows(), a.Cols()
	n, bc := b.Rows(), b.Cols()
	if from < 0 || to > ac || to > bc || from >= to {
		panic(fmt.Sprintf("tensor: MatMulBTCols [%d,%d) out of range for %v x %v^T", from, to, a.Shape, b.Shape))
	}
	w := to - from
	out := tp.alloc(m, n)
	gemmNT(out.Data, a.Data[from:], b.Data[from:], m, w, n, ac, bc, n)
	tp.record(func() {
		g := out.Grad
		if g == nil {
			return
		}
		ga, gb := a.ensureGrad(), b.ensureGrad()
		gemmNN(ga[from:], g, b.Data[from:], m, n, w, n, bc, ac)
		gemmTN(gb[from:], g, a.Data[from:], m, n, w, n, ac, bc)
	})
	return out
}

// Elementwise ops run their loops through ParallelWork, whose work argument
// is elements times an estimated per-element cost: 1 for arithmetic, ewTransc
// for transcendental functions (exp/tanh), so e.g. a Sigmoid over 4k elements
// parallelizes while an Add of the same size stays serial. Backward closures
// partition the same index ranges; per-element gradient updates are
// independent, so chunked execution is race-free and bitwise-deterministic
// even when an op's two inputs alias the same tensor. Ops that reduce across
// the partition axis in backward (AddBias, LayerNorm, Sum) keep those
// reductions serial.
const ewTransc = 16

// Add returns a + b for tensors of identical shape.
func Add(tp *Tape, a, b *Tensor) *Tensor {
	if !SameShape(a, b) {
		panic(fmt.Sprintf("tensor: Add shape mismatch %v vs %v", a.Shape, b.Shape))
	}
	out := tp.alloc(a.Shape...)
	ParallelWork(len(out.Data), len(out.Data), func(s, e int) {
		for i := s; i < e; i++ {
			out.Data[i] = a.Data[i] + b.Data[i]
		}
	})
	tp.record(func() {
		g := out.Grad
		if g == nil {
			return
		}
		ga, gb := a.ensureGrad(), b.ensureGrad()
		ParallelWork(len(g), len(g), func(s, e int) {
			for i := s; i < e; i++ {
				ga[i] += g[i]
				gb[i] += g[i]
			}
		})
	})
	return out
}

// AddBias returns a[m,n] + bias[n] broadcast across rows.
func AddBias(tp *Tape, a, bias *Tensor) *Tensor {
	m, n := a.Rows(), a.Cols()
	if bias.Len() != n {
		panic(fmt.Sprintf("tensor: AddBias bias length %d != cols %d", bias.Len(), n))
	}
	out := tp.alloc(m, n)
	ParallelWork(m, m*n, func(r0, r1 int) {
		for i := r0; i < r1; i++ {
			ar, or := a.Row(i), out.Data[i*n:(i+1)*n]
			for j, av := range ar {
				or[j] = av + bias.Data[j]
			}
		}
	})
	tp.record(func() {
		g := out.Grad
		if g == nil {
			return
		}
		// gb reduces across rows, so the backward stays serial.
		ga, gb := a.ensureGrad(), bias.ensureGrad()
		for i := 0; i < m; i++ {
			gr := g[i*n : (i+1)*n]
			gar := ga[i*n : (i+1)*n]
			for j, gv := range gr {
				gar[j] += gv
				gb[j] += gv
			}
		}
	})
	return out
}

// Sub returns a - b for tensors of identical shape.
func Sub(tp *Tape, a, b *Tensor) *Tensor {
	if !SameShape(a, b) {
		panic(fmt.Sprintf("tensor: Sub shape mismatch %v vs %v", a.Shape, b.Shape))
	}
	out := tp.alloc(a.Shape...)
	ParallelWork(len(out.Data), len(out.Data), func(s, e int) {
		for i := s; i < e; i++ {
			out.Data[i] = a.Data[i] - b.Data[i]
		}
	})
	tp.record(func() {
		g := out.Grad
		if g == nil {
			return
		}
		ga, gb := a.ensureGrad(), b.ensureGrad()
		ParallelWork(len(g), len(g), func(s, e int) {
			for i := s; i < e; i++ {
				ga[i] += g[i]
				gb[i] -= g[i]
			}
		})
	})
	return out
}

// Mul returns the elementwise (Hadamard) product of a and b.
func Mul(tp *Tape, a, b *Tensor) *Tensor {
	if !SameShape(a, b) {
		panic(fmt.Sprintf("tensor: Mul shape mismatch %v vs %v", a.Shape, b.Shape))
	}
	out := tp.alloc(a.Shape...)
	ParallelWork(len(out.Data), len(out.Data), func(s, e int) {
		for i := s; i < e; i++ {
			out.Data[i] = a.Data[i] * b.Data[i]
		}
	})
	tp.record(func() {
		g := out.Grad
		if g == nil {
			return
		}
		ga, gb := a.ensureGrad(), b.ensureGrad()
		ParallelWork(len(g), len(g), func(s, e int) {
			for i := s; i < e; i++ {
				ga[i] += g[i] * b.Data[i]
				gb[i] += g[i] * a.Data[i]
			}
		})
	})
	return out
}

// Scale returns s * a.
func Scale(tp *Tape, a *Tensor, s float32) *Tensor {
	out := tp.alloc(a.Shape...)
	ParallelWork(len(out.Data), len(out.Data), func(start, end int) {
		for i := start; i < end; i++ {
			out.Data[i] = a.Data[i] * s
		}
	})
	tp.record(func() {
		g := out.Grad
		if g == nil {
			return
		}
		ga := a.ensureGrad()
		ParallelWork(len(g), len(g), func(start, end int) {
			for i := start; i < end; i++ {
				ga[i] += g[i] * s
			}
		})
	})
	return out
}

// Sigmoid returns 1/(1+exp(-a)) elementwise.
func Sigmoid(tp *Tape, a *Tensor) *Tensor {
	out := tp.alloc(a.Shape...)
	ParallelWork(len(out.Data), len(out.Data)*ewTransc, func(s, e int) {
		for i := s; i < e; i++ {
			out.Data[i] = float32(1 / (1 + math.Exp(-float64(a.Data[i]))))
		}
	})
	tp.record(func() {
		g := out.Grad
		if g == nil {
			return
		}
		ga := a.ensureGrad()
		ParallelWork(len(g), len(g), func(s, e int) {
			for i := s; i < e; i++ {
				y := out.Data[i]
				ga[i] += g[i] * y * (1 - y)
			}
		})
	})
	return out
}

// Tanh returns tanh(a) elementwise.
func Tanh(tp *Tape, a *Tensor) *Tensor {
	out := tp.alloc(a.Shape...)
	ParallelWork(len(out.Data), len(out.Data)*ewTransc, func(s, e int) {
		for i := s; i < e; i++ {
			out.Data[i] = float32(math.Tanh(float64(a.Data[i])))
		}
	})
	tp.record(func() {
		g := out.Grad
		if g == nil {
			return
		}
		ga := a.ensureGrad()
		ParallelWork(len(g), len(g), func(s, e int) {
			for i := s; i < e; i++ {
				y := out.Data[i]
				ga[i] += g[i] * (1 - y*y)
			}
		})
	})
	return out
}

// ReLU returns max(a, 0) elementwise.
func ReLU(tp *Tape, a *Tensor) *Tensor {
	out := tp.alloc(a.Shape...)
	ParallelWork(len(out.Data), len(out.Data), func(s, e int) {
		for i := s; i < e; i++ {
			if av := a.Data[i]; av > 0 {
				out.Data[i] = av
			}
		}
	})
	tp.record(func() {
		g := out.Grad
		if g == nil {
			return
		}
		ga := a.ensureGrad()
		ParallelWork(len(g), len(g), func(s, e int) {
			for i := s; i < e; i++ {
				if a.Data[i] > 0 {
					ga[i] += g[i]
				}
			}
		})
	})
	return out
}

// SoftmaxRows applies a numerically-stable softmax independently to each row.
func SoftmaxRows(tp *Tape, a *Tensor) *Tensor {
	m, n := a.Rows(), a.Cols()
	out := tp.alloc(m, n)
	ParallelWork(m, m*n*ewTransc, func(r0, r1 int) {
		for i := r0; i < r1; i++ {
			ar, or := a.Row(i), out.Data[i*n:(i+1)*n]
			maxv := ar[0]
			for _, v := range ar[1:] {
				if v > maxv {
					maxv = v
				}
			}
			var sum float64
			for j, v := range ar {
				e := math.Exp(float64(v - maxv))
				or[j] = float32(e)
				sum += e
			}
			inv := float32(1 / sum)
			for j := range or {
				or[j] *= inv
			}
		}
	})
	tp.record(func() {
		g := out.Grad
		if g == nil {
			return
		}
		ga := a.ensureGrad()
		ParallelWork(m, m*n, func(r0, r1 int) {
			for i := r0; i < r1; i++ {
				gr := g[i*n : (i+1)*n]
				or := out.Data[i*n : (i+1)*n]
				gar := ga[i*n : (i+1)*n]
				var dot float32
				for j, gv := range gr {
					dot += gv * or[j]
				}
				for j, gv := range gr {
					gar[j] += or[j] * (gv - dot)
				}
			}
		})
	})
	return out
}

// ConcatCols concatenates matrices a[m,na] and b[m,nb] along columns.
func ConcatCols(tp *Tape, a, b *Tensor) *Tensor {
	m, na, nb := a.Rows(), a.Cols(), b.Cols()
	if b.Rows() != m {
		panic(fmt.Sprintf("tensor: ConcatCols row mismatch %v vs %v", a.Shape, b.Shape))
	}
	out := tp.alloc(m, na+nb)
	for i := 0; i < m; i++ {
		copy(out.Data[i*(na+nb):], a.Row(i))
		copy(out.Data[i*(na+nb)+na:], b.Row(i))
	}
	tp.record(func() {
		g := out.Grad
		if g == nil {
			return
		}
		ga, gb := a.ensureGrad(), b.ensureGrad()
		for i := 0; i < m; i++ {
			gr := g[i*(na+nb) : (i+1)*(na+nb)]
			gar := ga[i*na : (i+1)*na]
			gbr := gb[i*nb : (i+1)*nb]
			for j := 0; j < na; j++ {
				gar[j] += gr[j]
			}
			for j := 0; j < nb; j++ {
				gbr[j] += gr[na+j]
			}
		}
	})
	return out
}

// SliceCols returns columns [from, to) of matrix a as a new tensor whose
// gradient flows back into the corresponding columns of a.
func SliceCols(tp *Tape, a *Tensor, from, to int) *Tensor {
	m, n := a.Rows(), a.Cols()
	if from < 0 || to > n || from >= to {
		panic(fmt.Sprintf("tensor: SliceCols [%d,%d) out of range for %v", from, to, a.Shape))
	}
	w := to - from
	out := tp.alloc(m, w)
	for i := 0; i < m; i++ {
		copy(out.Data[i*w:(i+1)*w], a.Data[i*n+from:i*n+to])
	}
	tp.record(func() {
		g := out.Grad
		if g == nil {
			return
		}
		ga := a.ensureGrad()
		for i := 0; i < m; i++ {
			gr := g[i*w : (i+1)*w]
			gar := ga[i*n+from : i*n+to]
			for j, gv := range gr {
				gar[j] += gv
			}
		}
	})
	return out
}

// SliceRows returns rows [from, to) of matrix a as a new tensor whose
// gradient flows back into the corresponding rows of a.
func SliceRows(tp *Tape, a *Tensor, from, to int) *Tensor {
	m, n := a.Rows(), a.Cols()
	if from < 0 || to > m || from >= to {
		panic(fmt.Sprintf("tensor: SliceRows [%d,%d) out of range for %v", from, to, a.Shape))
	}
	h := to - from
	out := tp.alloc(h, n)
	copy(out.Data, a.Data[from*n:to*n])
	tp.record(func() {
		g := out.Grad
		if g == nil {
			return
		}
		ga := a.ensureGrad()
		for i, gv := range g {
			ga[from*n+i] += gv
		}
	})
	return out
}

// Transpose returns a[m,n]^T as an [n,m] tensor.
func Transpose(tp *Tape, a *Tensor) *Tensor {
	m, n := a.Rows(), a.Cols()
	out := tp.alloc(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*m+i] = a.Data[i*n+j]
		}
	}
	tp.record(func() {
		g := out.Grad
		if g == nil {
			return
		}
		ga := a.ensureGrad()
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				ga[i*n+j] += g[j*m+i]
			}
		}
	})
	return out
}

// Sum reduces all elements to a scalar tensor.
func Sum(tp *Tape, a *Tensor) *Tensor {
	out := tp.alloc(1)
	var s float64
	for _, v := range a.Data {
		s += float64(v)
	}
	out.Data[0] = float32(s)
	tp.record(func() {
		g := out.Grad
		if g == nil {
			return
		}
		ga := a.ensureGrad()
		gv := g[0]
		for i := range ga {
			ga[i] += gv
		}
	})
	return out
}

// Mean reduces all elements to their scalar average.
func Mean(tp *Tape, a *Tensor) *Tensor {
	n := float32(a.Len())
	s := Sum(tp, a)
	return Scale(tp, s, 1/n)
}

// LayerNorm normalizes each row of x to zero mean and unit variance, then
// applies the learned per-column gain and bias: gamma * xhat + beta.
func LayerNorm(tp *Tape, x, gamma, beta *Tensor, eps float32) *Tensor {
	m, n := x.Rows(), x.Cols()
	if gamma.Len() != n || beta.Len() != n {
		panic("tensor: LayerNorm gain/bias length mismatch")
	}
	out := tp.alloc(m, n)
	// Scratch lives on the tape arena too: the backward closure needs the
	// normalized activations and per-row scales, so they are step-lifetime.
	xhat := tp.alloc(m, n).Data
	invStd := tp.alloc(m).Data
	ParallelWork(m, m*n*4, func(r0, r1 int) {
		for i := r0; i < r1; i++ {
			xr := x.Row(i)
			var mean float64
			for _, v := range xr {
				mean += float64(v)
			}
			mean /= float64(n)
			var varc float64
			for _, v := range xr {
				d := float64(v) - mean
				varc += d * d
			}
			varc /= float64(n)
			is := float32(1 / math.Sqrt(varc+float64(eps)))
			invStd[i] = is
			for j, v := range xr {
				h := (v - float32(mean)) * is
				xhat[i*n+j] = h
				out.Data[i*n+j] = gamma.Data[j]*h + beta.Data[j]
			}
		}
	})
	// The backward stays serial: gg/gb reduce across rows.
	tp.record(func() {
		g := out.Grad
		if g == nil {
			return
		}
		gx, gg, gb := x.ensureGrad(), gamma.ensureGrad(), beta.ensureGrad()
		dh := make([]float32, n) // hoisted: one scratch row per backward, not per row
		for i := 0; i < m; i++ {
			gr := g[i*n : (i+1)*n]
			hr := xhat[i*n : (i+1)*n]
			// dxhat = g * gamma; accumulate gamma/beta grads.
			var sumDh, sumDhH float32
			for j, gv := range gr {
				gg[j] += gv * hr[j]
				gb[j] += gv
				d := gv * gamma.Data[j]
				dh[j] = d
				sumDh += d
				sumDhH += d * hr[j]
			}
			is := invStd[i]
			nf := float32(n)
			gxr := gx[i*n : (i+1)*n]
			for j := range dh {
				gxr[j] += (is / nf) * (nf*dh[j] - sumDh - hr[j]*sumDhH)
			}
		}
	})
	return out
}
