package tensor

import (
	"fmt"
	"math"
)

// MatMul returns a[m,k] * b[k,n]. When tp is non-nil the backward pass
// accumulates dA += dC*B^T and dB += A^T*dC.
func MatMul(tp *Tape, a, b *Tensor) *Tensor {
	m, k := a.Rows(), a.Cols()
	k2, n := b.Rows(), b.Cols()
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %v x %v", a.Shape, b.Shape))
	}
	out := New(m, n)
	mmNN(out.Data, a.Data, b.Data, m, k, n)
	tp.record(func() {
		g := out.Grad
		if g == nil {
			return
		}
		mmNT(a.ensureGrad(), g, b.Data, m, n, k)
		mmTN(b.ensureGrad(), a.Data, g, m, k, n)
	})
	return out
}

// MatMulBT returns a[m,k] * b[n,k]^T, i.e. the rows of a dotted with the rows
// of b. This is the natural form for PerfVec's predictor, where each row of b
// is one microarchitecture representation.
func MatMulBT(tp *Tape, a, b *Tensor) *Tensor {
	m, k := a.Rows(), a.Cols()
	n, k2 := b.Rows(), b.Cols()
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulBT shape mismatch %v x %v^T", a.Shape, b.Shape))
	}
	out := New(m, n)
	mmNT(out.Data, a.Data, b.Data, m, k, n)
	tp.record(func() {
		g := out.Grad
		if g == nil {
			return
		}
		// dA += dC * B ; dB += dC^T * A
		mmNN(a.ensureGrad(), g, b.Data, m, n, k)
		mmTN(b.ensureGrad(), g, a.Data, m, n, k)
	})
	return out
}

// Add returns a + b for tensors of identical shape.
func Add(tp *Tape, a, b *Tensor) *Tensor {
	if !SameShape(a, b) {
		panic(fmt.Sprintf("tensor: Add shape mismatch %v vs %v", a.Shape, b.Shape))
	}
	out := New(a.Shape...)
	for i, av := range a.Data {
		out.Data[i] = av + b.Data[i]
	}
	tp.record(func() {
		g := out.Grad
		if g == nil {
			return
		}
		ga, gb := a.ensureGrad(), b.ensureGrad()
		for i, gv := range g {
			ga[i] += gv
			gb[i] += gv
		}
	})
	return out
}

// AddBias returns a[m,n] + bias[n] broadcast across rows.
func AddBias(tp *Tape, a, bias *Tensor) *Tensor {
	m, n := a.Rows(), a.Cols()
	if bias.Len() != n {
		panic(fmt.Sprintf("tensor: AddBias bias length %d != cols %d", bias.Len(), n))
	}
	out := New(m, n)
	for i := 0; i < m; i++ {
		ar, or := a.Row(i), out.Data[i*n:(i+1)*n]
		for j, av := range ar {
			or[j] = av + bias.Data[j]
		}
	}
	tp.record(func() {
		g := out.Grad
		if g == nil {
			return
		}
		ga, gb := a.ensureGrad(), bias.ensureGrad()
		for i := 0; i < m; i++ {
			gr := g[i*n : (i+1)*n]
			gar := ga[i*n : (i+1)*n]
			for j, gv := range gr {
				gar[j] += gv
				gb[j] += gv
			}
		}
	})
	return out
}

// Sub returns a - b for tensors of identical shape.
func Sub(tp *Tape, a, b *Tensor) *Tensor {
	if !SameShape(a, b) {
		panic(fmt.Sprintf("tensor: Sub shape mismatch %v vs %v", a.Shape, b.Shape))
	}
	out := New(a.Shape...)
	for i, av := range a.Data {
		out.Data[i] = av - b.Data[i]
	}
	tp.record(func() {
		g := out.Grad
		if g == nil {
			return
		}
		ga, gb := a.ensureGrad(), b.ensureGrad()
		for i, gv := range g {
			ga[i] += gv
			gb[i] -= gv
		}
	})
	return out
}

// Mul returns the elementwise (Hadamard) product of a and b.
func Mul(tp *Tape, a, b *Tensor) *Tensor {
	if !SameShape(a, b) {
		panic(fmt.Sprintf("tensor: Mul shape mismatch %v vs %v", a.Shape, b.Shape))
	}
	out := New(a.Shape...)
	for i, av := range a.Data {
		out.Data[i] = av * b.Data[i]
	}
	tp.record(func() {
		g := out.Grad
		if g == nil {
			return
		}
		ga, gb := a.ensureGrad(), b.ensureGrad()
		for i, gv := range g {
			ga[i] += gv * b.Data[i]
			gb[i] += gv * a.Data[i]
		}
	})
	return out
}

// Scale returns s * a.
func Scale(tp *Tape, a *Tensor, s float32) *Tensor {
	out := New(a.Shape...)
	for i, av := range a.Data {
		out.Data[i] = av * s
	}
	tp.record(func() {
		g := out.Grad
		if g == nil {
			return
		}
		ga := a.ensureGrad()
		for i, gv := range g {
			ga[i] += gv * s
		}
	})
	return out
}

// Sigmoid returns 1/(1+exp(-a)) elementwise.
func Sigmoid(tp *Tape, a *Tensor) *Tensor {
	out := New(a.Shape...)
	for i, av := range a.Data {
		out.Data[i] = float32(1 / (1 + math.Exp(-float64(av))))
	}
	tp.record(func() {
		g := out.Grad
		if g == nil {
			return
		}
		ga := a.ensureGrad()
		for i, gv := range g {
			y := out.Data[i]
			ga[i] += gv * y * (1 - y)
		}
	})
	return out
}

// Tanh returns tanh(a) elementwise.
func Tanh(tp *Tape, a *Tensor) *Tensor {
	out := New(a.Shape...)
	for i, av := range a.Data {
		out.Data[i] = float32(math.Tanh(float64(av)))
	}
	tp.record(func() {
		g := out.Grad
		if g == nil {
			return
		}
		ga := a.ensureGrad()
		for i, gv := range g {
			y := out.Data[i]
			ga[i] += gv * (1 - y*y)
		}
	})
	return out
}

// ReLU returns max(a, 0) elementwise.
func ReLU(tp *Tape, a *Tensor) *Tensor {
	out := New(a.Shape...)
	for i, av := range a.Data {
		if av > 0 {
			out.Data[i] = av
		}
	}
	tp.record(func() {
		g := out.Grad
		if g == nil {
			return
		}
		ga := a.ensureGrad()
		for i, gv := range g {
			if a.Data[i] > 0 {
				ga[i] += gv
			}
		}
	})
	return out
}

// SoftmaxRows applies a numerically-stable softmax independently to each row.
func SoftmaxRows(tp *Tape, a *Tensor) *Tensor {
	m, n := a.Rows(), a.Cols()
	out := New(m, n)
	for i := 0; i < m; i++ {
		ar, or := a.Row(i), out.Data[i*n:(i+1)*n]
		maxv := ar[0]
		for _, v := range ar[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for j, v := range ar {
			e := math.Exp(float64(v - maxv))
			or[j] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for j := range or {
			or[j] *= inv
		}
	}
	tp.record(func() {
		g := out.Grad
		if g == nil {
			return
		}
		ga := a.ensureGrad()
		for i := 0; i < m; i++ {
			gr := g[i*n : (i+1)*n]
			or := out.Data[i*n : (i+1)*n]
			gar := ga[i*n : (i+1)*n]
			var dot float32
			for j, gv := range gr {
				dot += gv * or[j]
			}
			for j, gv := range gr {
				gar[j] += or[j] * (gv - dot)
			}
		}
	})
	return out
}

// ConcatCols concatenates matrices a[m,na] and b[m,nb] along columns.
func ConcatCols(tp *Tape, a, b *Tensor) *Tensor {
	m, na, nb := a.Rows(), a.Cols(), b.Cols()
	if b.Rows() != m {
		panic(fmt.Sprintf("tensor: ConcatCols row mismatch %v vs %v", a.Shape, b.Shape))
	}
	out := New(m, na+nb)
	for i := 0; i < m; i++ {
		copy(out.Data[i*(na+nb):], a.Row(i))
		copy(out.Data[i*(na+nb)+na:], b.Row(i))
	}
	tp.record(func() {
		g := out.Grad
		if g == nil {
			return
		}
		ga, gb := a.ensureGrad(), b.ensureGrad()
		for i := 0; i < m; i++ {
			gr := g[i*(na+nb) : (i+1)*(na+nb)]
			gar := ga[i*na : (i+1)*na]
			gbr := gb[i*nb : (i+1)*nb]
			for j := 0; j < na; j++ {
				gar[j] += gr[j]
			}
			for j := 0; j < nb; j++ {
				gbr[j] += gr[na+j]
			}
		}
	})
	return out
}

// SliceCols returns columns [from, to) of matrix a as a new tensor whose
// gradient flows back into the corresponding columns of a.
func SliceCols(tp *Tape, a *Tensor, from, to int) *Tensor {
	m, n := a.Rows(), a.Cols()
	if from < 0 || to > n || from >= to {
		panic(fmt.Sprintf("tensor: SliceCols [%d,%d) out of range for %v", from, to, a.Shape))
	}
	w := to - from
	out := New(m, w)
	for i := 0; i < m; i++ {
		copy(out.Data[i*w:(i+1)*w], a.Data[i*n+from:i*n+to])
	}
	tp.record(func() {
		g := out.Grad
		if g == nil {
			return
		}
		ga := a.ensureGrad()
		for i := 0; i < m; i++ {
			gr := g[i*w : (i+1)*w]
			gar := ga[i*n+from : i*n+to]
			for j, gv := range gr {
				gar[j] += gv
			}
		}
	})
	return out
}

// SliceRows returns rows [from, to) of matrix a as a new tensor whose
// gradient flows back into the corresponding rows of a.
func SliceRows(tp *Tape, a *Tensor, from, to int) *Tensor {
	m, n := a.Rows(), a.Cols()
	if from < 0 || to > m || from >= to {
		panic(fmt.Sprintf("tensor: SliceRows [%d,%d) out of range for %v", from, to, a.Shape))
	}
	h := to - from
	out := New(h, n)
	copy(out.Data, a.Data[from*n:to*n])
	tp.record(func() {
		g := out.Grad
		if g == nil {
			return
		}
		ga := a.ensureGrad()
		for i, gv := range g {
			ga[from*n+i] += gv
		}
	})
	return out
}

// Transpose returns a[m,n]^T as an [n,m] tensor.
func Transpose(tp *Tape, a *Tensor) *Tensor {
	m, n := a.Rows(), a.Cols()
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*m+i] = a.Data[i*n+j]
		}
	}
	tp.record(func() {
		g := out.Grad
		if g == nil {
			return
		}
		ga := a.ensureGrad()
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				ga[i*n+j] += g[j*m+i]
			}
		}
	})
	return out
}

// Sum reduces all elements to a scalar tensor.
func Sum(tp *Tape, a *Tensor) *Tensor {
	out := New(1)
	var s float64
	for _, v := range a.Data {
		s += float64(v)
	}
	out.Data[0] = float32(s)
	tp.record(func() {
		g := out.Grad
		if g == nil {
			return
		}
		ga := a.ensureGrad()
		gv := g[0]
		for i := range ga {
			ga[i] += gv
		}
	})
	return out
}

// Mean reduces all elements to their scalar average.
func Mean(tp *Tape, a *Tensor) *Tensor {
	n := float32(a.Len())
	s := Sum(tp, a)
	return Scale(tp, s, 1/n)
}

// LayerNorm normalizes each row of x to zero mean and unit variance, then
// applies the learned per-column gain and bias: gamma * xhat + beta.
func LayerNorm(tp *Tape, x, gamma, beta *Tensor, eps float32) *Tensor {
	m, n := x.Rows(), x.Cols()
	if gamma.Len() != n || beta.Len() != n {
		panic("tensor: LayerNorm gain/bias length mismatch")
	}
	out := New(m, n)
	xhat := make([]float32, m*n)
	invStd := make([]float32, m)
	for i := 0; i < m; i++ {
		xr := x.Row(i)
		var mean float64
		for _, v := range xr {
			mean += float64(v)
		}
		mean /= float64(n)
		var varc float64
		for _, v := range xr {
			d := float64(v) - mean
			varc += d * d
		}
		varc /= float64(n)
		is := float32(1 / math.Sqrt(varc+float64(eps)))
		invStd[i] = is
		for j, v := range xr {
			h := (v - float32(mean)) * is
			xhat[i*n+j] = h
			out.Data[i*n+j] = gamma.Data[j]*h + beta.Data[j]
		}
	}
	tp.record(func() {
		g := out.Grad
		if g == nil {
			return
		}
		gx, gg, gb := x.ensureGrad(), gamma.ensureGrad(), beta.ensureGrad()
		for i := 0; i < m; i++ {
			gr := g[i*n : (i+1)*n]
			hr := xhat[i*n : (i+1)*n]
			// dxhat = g * gamma; accumulate gamma/beta grads.
			var sumDh, sumDhH float32
			dh := make([]float32, n)
			for j, gv := range gr {
				gg[j] += gv * hr[j]
				gb[j] += gv
				d := gv * gamma.Data[j]
				dh[j] = d
				sumDh += d
				sumDhH += d * hr[j]
			}
			is := invStd[i]
			nf := float32(n)
			gxr := gx[i*n : (i+1)*n]
			for j := range dh {
				gxr[j] += (is / nf) * (nf*dh[j] - sumDh - hr[j]*sumDhH)
			}
		}
	})
	return out
}
