package tensor

import (
	"fmt"
	"math"
)

// Each op records a typed opRecord on the tape (see records.go) and has a
// matching vjp* function, kept adjacent to its forward pass, that the static
// VJP table dispatches during Backward. The VJP bodies replay the former
// backward closures' arithmetic verbatim: same expressions, same
// accumulation order, same chunking — gradients are bitwise identical to the
// closure tape's.
//
// Elementwise loops dispatch through ParallelKernel as top-level k* kernel
// functions with by-value argument blocks (see parallel.go): a func literal
// handed to the pool escapes and costs one heap object per op invocation,
// and those closure objects were the step's dominant remaining allocation
// once tensors and records were pooled. Each kernel documents its KernelArgs
// slot layout. The work estimate is elements times per-element cost: 1 for
// arithmetic, ewTransc for transcendental functions (exp/tanh). Per-element
// gradient updates are independent, so chunked execution is race-free and
// bitwise-deterministic even when an op's two inputs alias the same tensor;
// ops that reduce across the partition axis in backward (AddBias, LayerNorm,
// Sum) keep those reductions serial.
const ewTransc = 16

// MatMul returns a[m,k] * b[k,n]. The backward pass accumulates
// dA += dC*B^T and dB += A^T*dC.
func MatMul(tp *Tape, a, b *Tensor) *Tensor {
	m, k := a.Rows(), a.Cols()
	k2, n := b.Rows(), b.Cols()
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %v x %v", a.Shape, b.Shape))
	}
	out := tp.alloc(m, n)
	mmNN(out.Data, a.Data, b.Data, m, k, n)
	tp.record(opRecord{kind: opMatMul, a: a, b: b, out: out})
	return out
}

// vjpMatMul: a, b, out.
//perfvec:hotpath
func vjpMatMul(_ *Tape, r *opRecord) {
	g := r.out.Grad
	if g == nil {
		return
	}
	a, b := r.a, r.b
	m, k := a.Rows(), a.Cols()
	n := b.Cols()
	mmNT(a.ensureGrad(), g, b.Data, m, n, k)
	mmTN(b.ensureGrad(), a.Data, g, m, k, n)
}

// MatMulBT returns a[m,k] * b[n,k]^T, i.e. the rows of a dotted with the rows
// of b. This is the natural form for PerfVec's predictor, where each row of b
// is one microarchitecture representation.
func MatMulBT(tp *Tape, a, b *Tensor) *Tensor {
	m, k := a.Rows(), a.Cols()
	n, k2 := b.Rows(), b.Cols()
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulBT shape mismatch %v x %v^T", a.Shape, b.Shape))
	}
	out := tp.alloc(m, n)
	mmNT(out.Data, a.Data, b.Data, m, k, n)
	tp.record(opRecord{kind: opMatMulBT, a: a, b: b, out: out})
	return out
}

// vjpMatMulBT: a, b, out.
//perfvec:hotpath
func vjpMatMulBT(_ *Tape, r *opRecord) {
	g := r.out.Grad
	if g == nil {
		return
	}
	a, b := r.a, r.b
	m, k := a.Rows(), a.Cols()
	n := b.Rows()
	// dA += dC * B ; dB += dC^T * A
	mmNN(a.ensureGrad(), g, b.Data, m, n, k)
	mmTN(b.ensureGrad(), g, a.Data, m, n, k)
}

// MatMulBTCat returns [x|h] * w^T without materializing the column
// concatenation of x[m,xc] and h[m,hc]: w[n, xc+hc] is treated as two column
// blocks and the leading-dimension-aware kernels run directly on the
// sub-views. This is the hot op of the recurrent cells (GRU/LSTM), where the
// seed built a fresh ConcatCols tensor every timestep of every layer.
func MatMulBTCat(tp *Tape, x, h, w *Tensor) *Tensor {
	m, xc := x.Rows(), x.Cols()
	hc := h.Cols()
	n, wc := w.Rows(), w.Cols()
	if h.Rows() != m || wc != xc+hc {
		panic(fmt.Sprintf("tensor: MatMulBTCat shape mismatch [%v|%v] x %v^T", x.Shape, h.Shape, w.Shape))
	}
	out := tp.alloc(m, n)
	gemmNT(out.Data, x.Data, w.Data, m, xc, n, xc, wc, n)
	gemmNT(out.Data, h.Data, w.Data[xc:], m, hc, n, hc, wc, n)
	tp.record(opRecord{kind: opMatMulBTCat, a: x, b: h, c: w, out: out})
	return out
}

// vjpMatMulBTCat: a=x, b=h, c=w, out.
//perfvec:hotpath
func vjpMatMulBTCat(_ *Tape, r *opRecord) {
	g := r.out.Grad
	if g == nil {
		return
	}
	x, h, w := r.a, r.b, r.c
	m, xc := x.Rows(), x.Cols()
	hc := h.Cols()
	n, wc := w.Rows(), w.Cols()
	gx, gh, gw := x.ensureGrad(), h.ensureGrad(), w.ensureGrad()
	// dX += dC * W[:, :xc] ; dH += dC * W[:, xc:]
	gemmNN(gx, g, w.Data, m, n, xc, n, wc, xc)
	gemmNN(gh, g, w.Data[xc:], m, n, hc, n, wc, hc)
	// dW[:, :xc] += dC^T * X ; dW[:, xc:] += dC^T * H
	gemmTN(gw, g, x.Data, m, n, xc, n, xc, wc)
	gemmTN(gw[xc:], g, h.Data, m, n, hc, n, hc, wc)
}

// MatMulBTCols returns a[:, from:to] * b[:, from:to]^T without materializing
// the column slices; gradients flow back into the corresponding columns of a
// and b. This is the attention-score form: per-head Q*K^T on column
// sub-ranges of the full projections.
func MatMulBTCols(tp *Tape, a, b *Tensor, from, to int) *Tensor {
	m, ac := a.Rows(), a.Cols()
	n, bc := b.Rows(), b.Cols()
	if from < 0 || to > ac || to > bc || from >= to {
		panic(fmt.Sprintf("tensor: MatMulBTCols [%d,%d) out of range for %v x %v^T", from, to, a.Shape, b.Shape))
	}
	w := to - from
	out := tp.alloc(m, n)
	gemmNT(out.Data, a.Data[from:], b.Data[from:], m, w, n, ac, bc, n)
	tp.record(opRecord{kind: opMatMulBTCols, a: a, b: b, out: out, i0: from, i1: to})
	return out
}

// vjpMatMulBTCols: a, b, out; i0=from, i1=to.
//perfvec:hotpath
func vjpMatMulBTCols(_ *Tape, r *opRecord) {
	g := r.out.Grad
	if g == nil {
		return
	}
	a, b, from := r.a, r.b, r.i0
	m, ac := a.Rows(), a.Cols()
	n, bc := b.Rows(), b.Cols()
	w := r.i1 - from
	ga, gb := a.ensureGrad(), b.ensureGrad()
	gemmNN(ga[from:], g, b.Data[from:], m, n, w, n, bc, ac)
	gemmTN(gb[from:], g, a.Data[from:], m, n, w, n, ac, bc)
}

// Add returns a + b for tensors of identical shape.
func Add(tp *Tape, a, b *Tensor) *Tensor {
	if !SameShape(a, b) {
		panic(fmt.Sprintf("tensor: Add shape mismatch %v vs %v", a.Shape, b.Shape))
	}
	out := tp.alloc(a.Shape...)
	ParallelKernel(len(out.Data), len(out.Data), kAdd,
		KernelArgs{S: [8][]float32{out.Data, a.Data, b.Data}})
	tp.record(opRecord{kind: opAdd, a: a, b: b, out: out})
	return out
}

// kAdd: S0=out, S1=a, S2=b.
func kAdd(s, e int, ka KernelArgs) {
	out, a, b := ka.S[0], ka.S[1], ka.S[2]
	for i := s; i < e; i++ {
		out[i] = a[i] + b[i]
	}
}

// vjpAdd: a, b, out.
//perfvec:hotpath
func vjpAdd(_ *Tape, r *opRecord) {
	g := r.out.Grad
	if g == nil {
		return
	}
	ParallelKernel(len(g), len(g), kAddVJP,
		KernelArgs{S: [8][]float32{g, r.a.ensureGrad(), r.b.ensureGrad()}})
}

// kAddVJP: S0=g, S1=ga, S2=gb.
func kAddVJP(s, e int, ka KernelArgs) {
	g, ga, gb := ka.S[0], ka.S[1], ka.S[2]
	for i := s; i < e; i++ {
		ga[i] += g[i]
		gb[i] += g[i]
	}
}

// AddBias returns a[m,n] + bias[n] broadcast across rows.
func AddBias(tp *Tape, a, bias *Tensor) *Tensor {
	m, n := a.Rows(), a.Cols()
	if bias.Len() != n {
		panic(fmt.Sprintf("tensor: AddBias bias length %d != cols %d", bias.Len(), n))
	}
	out := tp.alloc(m, n)
	ParallelKernel(m, m*n, kAddBias,
		KernelArgs{S: [8][]float32{out.Data, a.Data, bias.Data}, I: [6]int{n}})
	tp.record(opRecord{kind: opAddBias, a: a, b: bias, out: out})
	return out
}

// kAddBias: S0=out, S1=a, S2=bias; I0=n. Partitioned over rows.
func kAddBias(r0, r1 int, ka KernelArgs) {
	out, a, bias := ka.S[0], ka.S[1], ka.S[2]
	n := ka.I[0]
	for i := r0; i < r1; i++ {
		ar, or := a[i*n:(i+1)*n], out[i*n:(i+1)*n]
		for j, av := range ar {
			or[j] = av + bias[j]
		}
	}
}

// vjpAddBias: a, b=bias, out.
//perfvec:hotpath
func vjpAddBias(_ *Tape, r *opRecord) {
	g := r.out.Grad
	if g == nil {
		return
	}
	a := r.a
	m, n := a.Rows(), a.Cols()
	// gb reduces across rows, so the backward stays serial.
	ga, gb := a.ensureGrad(), r.b.ensureGrad()
	for i := 0; i < m; i++ {
		gr := g[i*n : (i+1)*n]
		gar := ga[i*n : (i+1)*n]
		for j, gv := range gr {
			gar[j] += gv
			gb[j] += gv
		}
	}
}

// Sub returns a - b for tensors of identical shape.
func Sub(tp *Tape, a, b *Tensor) *Tensor {
	if !SameShape(a, b) {
		panic(fmt.Sprintf("tensor: Sub shape mismatch %v vs %v", a.Shape, b.Shape))
	}
	out := tp.alloc(a.Shape...)
	ParallelKernel(len(out.Data), len(out.Data), kSub,
		KernelArgs{S: [8][]float32{out.Data, a.Data, b.Data}})
	tp.record(opRecord{kind: opSub, a: a, b: b, out: out})
	return out
}

// kSub: S0=out, S1=a, S2=b.
func kSub(s, e int, ka KernelArgs) {
	out, a, b := ka.S[0], ka.S[1], ka.S[2]
	for i := s; i < e; i++ {
		out[i] = a[i] - b[i]
	}
}

// vjpSub: a, b, out.
//perfvec:hotpath
func vjpSub(_ *Tape, r *opRecord) {
	g := r.out.Grad
	if g == nil {
		return
	}
	ParallelKernel(len(g), len(g), kSubVJP,
		KernelArgs{S: [8][]float32{g, r.a.ensureGrad(), r.b.ensureGrad()}})
}

// kSubVJP: S0=g, S1=ga, S2=gb.
func kSubVJP(s, e int, ka KernelArgs) {
	g, ga, gb := ka.S[0], ka.S[1], ka.S[2]
	for i := s; i < e; i++ {
		ga[i] += g[i]
		gb[i] -= g[i]
	}
}

// Mul returns the elementwise (Hadamard) product of a and b.
func Mul(tp *Tape, a, b *Tensor) *Tensor {
	if !SameShape(a, b) {
		panic(fmt.Sprintf("tensor: Mul shape mismatch %v vs %v", a.Shape, b.Shape))
	}
	out := tp.alloc(a.Shape...)
	ParallelKernel(len(out.Data), len(out.Data), kMul,
		KernelArgs{S: [8][]float32{out.Data, a.Data, b.Data}})
	tp.record(opRecord{kind: opMul, a: a, b: b, out: out})
	return out
}

// kMul: S0=out, S1=a, S2=b.
func kMul(s, e int, ka KernelArgs) {
	out, a, b := ka.S[0], ka.S[1], ka.S[2]
	for i := s; i < e; i++ {
		out[i] = a[i] * b[i]
	}
}

// vjpMul: a, b, out.
//perfvec:hotpath
func vjpMul(_ *Tape, r *opRecord) {
	g := r.out.Grad
	if g == nil {
		return
	}
	a, b := r.a, r.b
	ParallelKernel(len(g), len(g), kMulVJP,
		KernelArgs{S: [8][]float32{g, a.ensureGrad(), b.ensureGrad(), a.Data, b.Data}})
}

// kMulVJP: S0=g, S1=ga, S2=gb, S3=a, S4=b.
func kMulVJP(s, e int, ka KernelArgs) {
	g, ga, gb, a, b := ka.S[0], ka.S[1], ka.S[2], ka.S[3], ka.S[4]
	for i := s; i < e; i++ {
		ga[i] += g[i] * b[i]
		gb[i] += g[i] * a[i]
	}
}

// Scale returns s * a.
func Scale(tp *Tape, a *Tensor, s float32) *Tensor {
	out := tp.alloc(a.Shape...)
	ParallelKernel(len(out.Data), len(out.Data), kScale,
		KernelArgs{S: [8][]float32{out.Data, a.Data}, F: [6]float32{s}})
	tp.record(opRecord{kind: opScale, a: a, out: out, f0: s})
	return out
}

// kScale: S0=out, S1=a; F0=s.
func kScale(s, e int, ka KernelArgs) {
	out, a := ka.S[0], ka.S[1]
	f := ka.F[0]
	for i := s; i < e; i++ {
		out[i] = a[i] * f
	}
}

// vjpScale: a, out; f0=s.
//perfvec:hotpath
func vjpScale(_ *Tape, r *opRecord) {
	g := r.out.Grad
	if g == nil {
		return
	}
	ParallelKernel(len(g), len(g), kScaleVJP,
		KernelArgs{S: [8][]float32{g, r.a.ensureGrad()}, F: [6]float32{r.f0}})
}

// kScaleVJP: S0=g, S1=ga; F0=s.
func kScaleVJP(s, e int, ka KernelArgs) {
	g, ga := ka.S[0], ka.S[1]
	f := ka.F[0]
	for i := s; i < e; i++ {
		ga[i] += g[i] * f
	}
}

// Sigmoid returns 1/(1+exp(-a)) elementwise.
func Sigmoid(tp *Tape, a *Tensor) *Tensor {
	out := tp.alloc(a.Shape...)
	ParallelKernel(len(out.Data), len(out.Data)*ewTransc, kSigmoid,
		KernelArgs{S: [8][]float32{out.Data, a.Data}})
	tp.record(opRecord{kind: opSigmoid, a: a, out: out})
	return out
}

// kSigmoid: S0=out, S1=a.
func kSigmoid(s, e int, ka KernelArgs) {
	out, a := ka.S[0], ka.S[1]
	for i := s; i < e; i++ {
		out[i] = float32(1 / (1 + math.Exp(-float64(a[i]))))
	}
}

// vjpSigmoid: a, out.
//perfvec:hotpath
func vjpSigmoid(_ *Tape, r *opRecord) {
	g := r.out.Grad
	if g == nil {
		return
	}
	ParallelKernel(len(g), len(g), kSigmoidVJP,
		KernelArgs{S: [8][]float32{g, r.a.ensureGrad(), r.out.Data}})
}

// kSigmoidVJP: S0=g, S1=ga, S2=y (the op's output).
func kSigmoidVJP(s, e int, ka KernelArgs) {
	g, ga, out := ka.S[0], ka.S[1], ka.S[2]
	for i := s; i < e; i++ {
		y := out[i]
		ga[i] += g[i] * y * (1 - y)
	}
}

// Tanh returns tanh(a) elementwise.
func Tanh(tp *Tape, a *Tensor) *Tensor {
	out := tp.alloc(a.Shape...)
	ParallelKernel(len(out.Data), len(out.Data)*ewTransc, kTanh,
		KernelArgs{S: [8][]float32{out.Data, a.Data}})
	tp.record(opRecord{kind: opTanh, a: a, out: out})
	return out
}

// kTanh: S0=out, S1=a.
func kTanh(s, e int, ka KernelArgs) {
	out, a := ka.S[0], ka.S[1]
	for i := s; i < e; i++ {
		out[i] = float32(math.Tanh(float64(a[i])))
	}
}

// vjpTanh: a, out.
//perfvec:hotpath
func vjpTanh(_ *Tape, r *opRecord) {
	g := r.out.Grad
	if g == nil {
		return
	}
	ParallelKernel(len(g), len(g), kTanhVJP,
		KernelArgs{S: [8][]float32{g, r.a.ensureGrad(), r.out.Data}})
}

// kTanhVJP: S0=g, S1=ga, S2=y (the op's output).
func kTanhVJP(s, e int, ka KernelArgs) {
	g, ga, out := ka.S[0], ka.S[1], ka.S[2]
	for i := s; i < e; i++ {
		y := out[i]
		ga[i] += g[i] * (1 - y*y)
	}
}

// ReLU returns max(a, 0) elementwise.
func ReLU(tp *Tape, a *Tensor) *Tensor {
	out := tp.alloc(a.Shape...)
	ParallelKernel(len(out.Data), len(out.Data), kReLU,
		KernelArgs{S: [8][]float32{out.Data, a.Data}})
	tp.record(opRecord{kind: opReLU, a: a, out: out})
	return out
}

// kReLU: S0=out, S1=a.
func kReLU(s, e int, ka KernelArgs) {
	out, a := ka.S[0], ka.S[1]
	for i := s; i < e; i++ {
		if av := a[i]; av > 0 {
			out[i] = av
		}
	}
}

// vjpReLU: a, out.
//perfvec:hotpath
func vjpReLU(_ *Tape, r *opRecord) {
	g := r.out.Grad
	if g == nil {
		return
	}
	ParallelKernel(len(g), len(g), kReLUVJP,
		KernelArgs{S: [8][]float32{g, r.a.ensureGrad(), r.a.Data}})
}

// kReLUVJP: S0=g, S1=ga, S2=a (the op's input).
func kReLUVJP(s, e int, ka KernelArgs) {
	g, ga, a := ka.S[0], ka.S[1], ka.S[2]
	for i := s; i < e; i++ {
		if a[i] > 0 {
			ga[i] += g[i]
		}
	}
}

// SoftmaxRows applies a numerically-stable softmax independently to each row.
func SoftmaxRows(tp *Tape, a *Tensor) *Tensor {
	m, n := a.Rows(), a.Cols()
	out := tp.alloc(m, n)
	ParallelKernel(m, m*n*ewTransc, kSoftmaxRows,
		KernelArgs{S: [8][]float32{out.Data, a.Data}, I: [6]int{n}, F: [6]float32{1}})
	tp.record(opRecord{kind: opSoftmaxRows, a: a, out: out})
	return out
}

// kSoftmaxRows: S0=out, S1=a; I0=n; F0=pre-softmax scale (1 for the plain
// op). Partitioned over rows. With F0 == 1 the scale multiplications are
// exact identities (x*1 == x bitwise for every float32, including NaN
// payloads and signed zeros), so the plain softmax and the fused attention
// form share this kernel without perturbing the plain op's values.
func kSoftmaxRows(r0, r1 int, ka KernelArgs) {
	out, a := ka.S[0], ka.S[1]
	n := ka.I[0]
	scale := ka.F[0]
	for i := r0; i < r1; i++ {
		ar, or := a[i*n:(i+1)*n], out[i*n:(i+1)*n]
		maxv := ar[0] * scale
		for _, v := range ar[1:] {
			if sv := v * scale; sv > maxv {
				maxv = sv
			}
		}
		var sum float64
		for j, v := range ar {
			e := math.Exp(float64(v*scale - maxv))
			or[j] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for j := range or {
			or[j] *= inv
		}
	}
}

// vjpSoftmaxRows: a, out.
//perfvec:hotpath
func vjpSoftmaxRows(_ *Tape, r *opRecord) {
	g := r.out.Grad
	if g == nil {
		return
	}
	m, n := r.out.Rows(), r.out.Cols()
	ParallelKernel(m, m*n, kSoftmaxRowsVJP,
		KernelArgs{S: [8][]float32{g, r.a.ensureGrad(), r.out.Data}, I: [6]int{n}, F: [6]float32{1}})
}

// kSoftmaxRowsVJP: S0=g, S1=ga, S2=y (softmax output); I0=n; F0=post-VJP
// scale (1 for the plain op; see kSoftmaxRows).
func kSoftmaxRowsVJP(r0, r1 int, ka KernelArgs) {
	g, ga, out := ka.S[0], ka.S[1], ka.S[2]
	n := ka.I[0]
	scale := ka.F[0]
	for i := r0; i < r1; i++ {
		gr := g[i*n : (i+1)*n]
		or := out[i*n : (i+1)*n]
		gar := ga[i*n : (i+1)*n]
		var dot float32
		for j, gv := range gr {
			dot += gv * or[j]
		}
		for j, gv := range gr {
			gar[j] += (or[j] * (gv - dot)) * scale
		}
	}
}

// AttentionSoftmax returns softmax_rows(scale * a) as one fused record: the
// attention-score normalization (1/sqrt(d_k) scaling plus row softmax) that
// the transformer encoder previously recorded as a Scale node feeding a
// SoftmaxRows node, per head per sample. Like the fused gate kernels, the
// fusion is numerically invisible: the forward replays Scale's float32
// products (each a[i]*scale rounds once, exactly like the materialized
// scaled tensor's elements) before the identical softmax passes, and the
// backward composes the softmax VJP and the scale VJP with the same
// intermediate roundings the two separate ops produced — so outputs and all
// gradients are bitwise identical to SoftmaxRows(Scale(a)) while saving one
// [T,T] tensor, its gradient buffer, and one record per attention head.
func AttentionSoftmax(tp *Tape, a *Tensor, scale float32) *Tensor {
	m, n := a.Rows(), a.Cols()
	out := tp.alloc(m, n)
	ParallelKernel(m, m*n*ewTransc, kSoftmaxRows,
		KernelArgs{S: [8][]float32{out.Data, a.Data}, I: [6]int{n}, F: [6]float32{scale}})
	tp.record(opRecord{kind: opAttentionSoftmax, a: a, out: out, f0: scale})
	return out
}

// vjpAttentionSoftmax: a, out; f0=scale. The softmax VJP's per-element
// product rounds to float32 before the scale factor multiplies it — the
// exact sequence the unfused SoftmaxRows-then-Scale backward performed.
//perfvec:hotpath
func vjpAttentionSoftmax(_ *Tape, r *opRecord) {
	g := r.out.Grad
	if g == nil {
		return
	}
	m, n := r.out.Rows(), r.out.Cols()
	ParallelKernel(m, m*n, kSoftmaxRowsVJP,
		KernelArgs{S: [8][]float32{g, r.a.ensureGrad(), r.out.Data}, I: [6]int{n}, F: [6]float32{r.f0}})
}

// ConcatCols concatenates matrices a[m,na] and b[m,nb] along columns.
func ConcatCols(tp *Tape, a, b *Tensor) *Tensor {
	m, na, nb := a.Rows(), a.Cols(), b.Cols()
	if b.Rows() != m {
		panic(fmt.Sprintf("tensor: ConcatCols row mismatch %v vs %v", a.Shape, b.Shape))
	}
	out := tp.alloc(m, na+nb)
	for i := 0; i < m; i++ {
		copy(out.Data[i*(na+nb):], a.Row(i))
		copy(out.Data[i*(na+nb)+na:], b.Row(i))
	}
	tp.record(opRecord{kind: opConcatCols, a: a, b: b, out: out})
	return out
}

// vjpConcatCols: a, b, out.
//perfvec:hotpath
func vjpConcatCols(_ *Tape, r *opRecord) {
	g := r.out.Grad
	if g == nil {
		return
	}
	a, b := r.a, r.b
	m, na, nb := a.Rows(), a.Cols(), b.Cols()
	ga, gb := a.ensureGrad(), b.ensureGrad()
	for i := 0; i < m; i++ {
		gr := g[i*(na+nb) : (i+1)*(na+nb)]
		gar := ga[i*na : (i+1)*na]
		gbr := gb[i*nb : (i+1)*nb]
		for j := 0; j < na; j++ {
			gar[j] += gr[j]
		}
		for j := 0; j < nb; j++ {
			gbr[j] += gr[na+j]
		}
	}
}

// SliceCols returns columns [from, to) of matrix a as a new tensor whose
// gradient flows back into the corresponding columns of a.
func SliceCols(tp *Tape, a *Tensor, from, to int) *Tensor {
	m, n := a.Rows(), a.Cols()
	if from < 0 || to > n || from >= to {
		panic(fmt.Sprintf("tensor: SliceCols [%d,%d) out of range for %v", from, to, a.Shape))
	}
	w := to - from
	out := tp.alloc(m, w)
	for i := 0; i < m; i++ {
		copy(out.Data[i*w:(i+1)*w], a.Data[i*n+from:i*n+to])
	}
	tp.record(opRecord{kind: opSliceCols, a: a, out: out, i0: from, i1: to})
	return out
}

// vjpSliceCols: a, out; i0=from, i1=to.
//perfvec:hotpath
func vjpSliceCols(_ *Tape, r *opRecord) {
	g := r.out.Grad
	if g == nil {
		return
	}
	a, from, to := r.a, r.i0, r.i1
	m, n := a.Rows(), a.Cols()
	w := to - from
	ga := a.ensureGrad()
	for i := 0; i < m; i++ {
		gr := g[i*w : (i+1)*w]
		gar := ga[i*n+from : i*n+to]
		for j, gv := range gr {
			gar[j] += gv
		}
	}
}

// SliceRows returns rows [from, to) of matrix a as a new tensor whose
// gradient flows back into the corresponding rows of a.
func SliceRows(tp *Tape, a *Tensor, from, to int) *Tensor {
	m, n := a.Rows(), a.Cols()
	if from < 0 || to > m || from >= to {
		panic(fmt.Sprintf("tensor: SliceRows [%d,%d) out of range for %v", from, to, a.Shape))
	}
	h := to - from
	out := tp.alloc(h, n)
	copy(out.Data, a.Data[from*n:to*n])
	tp.record(opRecord{kind: opSliceRows, a: a, out: out, i0: from, i1: to})
	return out
}

// vjpSliceRows: a, out; i0=from.
//perfvec:hotpath
func vjpSliceRows(_ *Tape, r *opRecord) {
	g := r.out.Grad
	if g == nil {
		return
	}
	a, from := r.a, r.i0
	n := a.Cols()
	ga := a.ensureGrad()
	for i, gv := range g {
		ga[from*n+i] += gv
	}
}

// Transpose returns a[m,n]^T as an [n,m] tensor.
func Transpose(tp *Tape, a *Tensor) *Tensor {
	m, n := a.Rows(), a.Cols()
	out := tp.alloc(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*m+i] = a.Data[i*n+j]
		}
	}
	tp.record(opRecord{kind: opTranspose, a: a, out: out})
	return out
}

// vjpTranspose: a, out.
//perfvec:hotpath
func vjpTranspose(_ *Tape, r *opRecord) {
	g := r.out.Grad
	if g == nil {
		return
	}
	a := r.a
	m, n := a.Rows(), a.Cols()
	ga := a.ensureGrad()
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			ga[i*n+j] += g[j*m+i]
		}
	}
}

// Sum reduces all elements to a scalar tensor.
func Sum(tp *Tape, a *Tensor) *Tensor {
	out := tp.alloc(1)
	var s float64
	for _, v := range a.Data {
		s += float64(v)
	}
	out.Data[0] = float32(s)
	tp.record(opRecord{kind: opSum, a: a, out: out})
	return out
}

// vjpSum: a, out.
//perfvec:hotpath
func vjpSum(_ *Tape, r *opRecord) {
	g := r.out.Grad
	if g == nil {
		return
	}
	ga := r.a.ensureGrad()
	gv := g[0]
	for i := range ga {
		ga[i] += gv
	}
}

// Mean reduces all elements to their scalar average.
func Mean(tp *Tape, a *Tensor) *Tensor {
	n := float32(a.Len())
	s := Sum(tp, a)
	return Scale(tp, s, 1/n)
}

// LayerNorm normalizes each row of x to zero mean and unit variance, then
// applies the learned per-column gain and bias: gamma * xhat + beta.
func LayerNorm(tp *Tape, x, gamma, beta *Tensor, eps float32) *Tensor {
	m, n := x.Rows(), x.Cols()
	if gamma.Len() != n || beta.Len() != n {
		panic("tensor: LayerNorm gain/bias length mismatch")
	}
	out := tp.alloc(m, n)
	// Scratch lives on the tape arena too: the VJP needs the normalized
	// activations and per-row scales, so they are step-lifetime.
	xhat := tp.alloc(m, n)
	invStd := tp.alloc(m)
	ParallelKernel(m, m*n*4, kLayerNorm, KernelArgs{
		S: [8][]float32{out.Data, x.Data, gamma.Data, beta.Data, xhat.Data, invStd.Data},
		I: [6]int{n},
		F: [6]float32{eps},
	})
	tp.record(opRecord{kind: opLayerNorm, a: x, b: gamma, c: beta, out: out, s1: xhat, s2: invStd})
	return out
}

// kLayerNorm: S0=out, S1=x, S2=gamma, S3=beta, S4=xhat, S5=invStd; I0=n;
// F0=eps. Partitioned over rows.
func kLayerNorm(r0, r1 int, ka KernelArgs) {
	out, x, gamma, beta, xhat, invStd := ka.S[0], ka.S[1], ka.S[2], ka.S[3], ka.S[4], ka.S[5]
	n := ka.I[0]
	eps := ka.F[0]
	for i := r0; i < r1; i++ {
		xr := x[i*n : (i+1)*n]
		var mean float64
		for _, v := range xr {
			mean += float64(v)
		}
		mean /= float64(n)
		var varc float64
		for _, v := range xr {
			d := float64(v) - mean
			varc += d * d
		}
		varc /= float64(n)
		is := float32(1 / math.Sqrt(varc+float64(eps)))
		invStd[i] = is
		for j, v := range xr {
			h := (v - float32(mean)) * is
			xhat[i*n+j] = h
			out[i*n+j] = gamma[j]*h + beta[j]
		}
	}
}

// vjpLayerNorm: a=x, b=gamma, c=beta, out, s1=xhat, s2=invStd. The backward
// stays serial: gg/gb reduce across rows.
//perfvec:hotpath
func vjpLayerNorm(tp *Tape, r *opRecord) {
	g := r.out.Grad
	if g == nil {
		return
	}
	x, gamma := r.a, r.b
	m, n := x.Rows(), x.Cols()
	xhat, invStd := r.s1.Data, r.s2.Data
	gx, gg, gb := x.ensureGrad(), gamma.ensureGrad(), r.c.ensureGrad()
	dh := tp.alloc(n).Data // one scratch row per backward, not per row
	for i := 0; i < m; i++ {
		gr := g[i*n : (i+1)*n]
		hr := xhat[i*n : (i+1)*n]
		// dxhat = g * gamma; accumulate gamma/beta grads.
		var sumDh, sumDhH float32
		for j, gv := range gr {
			gg[j] += gv * hr[j]
			gb[j] += gv
			d := gv * gamma.Data[j]
			dh[j] = d
			sumDh += d
			sumDhH += d * hr[j]
		}
		is := invStd[i]
		nf := float32(n)
		gxr := gx[i*n : (i+1)*n]
		for j := range dh {
			gxr[j] += (is / nf) * (nf*dh[j] - sumDh - hr[j]*sumDhH)
		}
	}
}
