package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelThreshold is the estimated number of scalar operations below which
// an op runs serially: a pool handoff costs on the order of a microsecond, so
// smaller problems lose more to dispatch than they gain from extra cores.
// Callers express that decision through ParallelWork; Parallel itself splits
// whenever more than one worker is available.
const parallelThreshold = 1 << 15

// task is one contiguous chunk of a Parallel or ParallelKernel call,
// dispatched to the pool. Exactly one of fn (closure form) or kern (typed
// kernel form, with its argument block carried by value in args) is set.
// A task with quit set tells the receiving worker to exit (pool shrink).
type task struct {
	fn         func(start, end int)
	kern       Kernel
	args       KernelArgs
	start, end int
	wg         *sync.WaitGroup
	quit       bool
}

// KernelArgs is the by-value argument block of a ParallelKernel dispatch: up
// to 8 float32 slices, the integer-typed slices the quantized engine needs
// (packed u8 activations, packed i8 weights, i32 accumulators), 6 ints, and
// 6 float32 scalars, copied through the task queue so that nothing about a
// dispatch escapes to the heap. Each kernel documents its own slot layout
// (the convention mirrors the opRecord field layouts in records.go).
type KernelArgs struct {
	S [8][]float32
	U [2][]uint8
	P [2][]int8
	Z [3][]int32
	I [6]int
	F [6]float32
}

// Kernel is a pool-dispatchable loop body over [start, end): a top-level
// function receiving its arguments by value. Unlike the closure form
// (Parallel/ParallelWork), invoking a Kernel allocates nothing — a func
// literal that escapes into the task queue costs one heap object per call
// site per invocation, which was the dominant per-op allocation left in the
// training step once tensors and records were pooled. All tensor-op forward
// and VJP loops, the GEMM wrappers, and nn's Adam update dispatch through
// kernels.
type Kernel func(start, end int, a KernelArgs)

// ParallelKernel runs k over [0, n) like Parallel when the estimated scalar
// work meets parallelThreshold, and serially otherwise — the closure-free
// analogue of ParallelWork. Chunk boundaries are identical to Parallel's, so
// the bitwise-determinism contract is unchanged.
func ParallelKernel(n, work int, k Kernel, a KernelArgs) {
	if work < parallelThreshold {
		k(0, n, a)
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		k(0, n, a)
		return
	}
	ensurePool()
	chunk := (n + workers - 1) / workers
	wg := wgPool.Get().(*sync.WaitGroup)
	for start := chunk; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		t := task{kern: k, args: a, start: start, end: end, wg: wg}
		wg.Add(1)
		select {
		case poolTasks <- t:
		default:
			// No idle worker: run the chunk here instead of queueing.
			k(start, end, a)
			wg.Done()
		}
	}
	k(0, chunk, a) // the caller always works on the first chunk itself
	wg.Wait()
	wgPool.Put(wg)
}

var (
	// poolSize is the number of live pool workers; ensurePool's lock-free
	// fast path reads it, resizes take poolMu.
	poolSize  atomic.Int32
	poolMu    sync.Mutex
	poolTasks chan task
)

// wgPool recycles the WaitGroup each Parallel call hands to its tasks; the
// group escapes into the task struct, so without pooling every parallelized
// op (every GEMM pass of every training step) would heap-allocate one.
var wgPool = sync.Pool{New: func() any { return new(sync.WaitGroup) }}

// ensurePool sizes the persistent worker pool to the current GOMAXPROCS,
// growing or shrinking it when the value has changed since the last call
// (the seed pool was sized once, at first use, and never adapted). Growth is
// immediate; shrinking is best-effort — a quit task is handed only to an
// already-idle worker, so a busy pool finishes its chunks and shrinks on a
// later call. The fast path (size unchanged) is one atomic load.
//
// Pool size only bounds how many chunks can run concurrently; chunk
// boundaries are computed from GOMAXPROCS in Parallel itself, so results
// remain bitwise-deterministic even while a resize is pending.
func ensurePool() {
	n := int32(runtime.GOMAXPROCS(0))
	if poolSize.Load() == n {
		return
	}
	poolMu.Lock()
	defer poolMu.Unlock()
	if poolTasks == nil {
		// Unbuffered: a dispatch succeeds only when a worker is actually
		// idle; Parallel runs any chunk it cannot hand off on the calling
		// goroutine. That keeps nested Parallel calls (a worker's chunk
		// itself calling Parallel) deadlock-free: work never waits in a
		// queue that only blocked workers could drain.
		poolTasks = make(chan task)
	}
	for poolSize.Load() < n {
		go poolWorker()
		poolSize.Add(1)
	}
	for poolSize.Load() > n {
		select {
		case poolTasks <- task{quit: true}:
			poolSize.Add(-1)
		default:
			return // no idle worker to retire; retry on a later call
		}
	}
}

// poolWorker runs chunks until it receives a quit task.
func poolWorker() {
	for t := range poolTasks {
		switch {
		case t.quit:
			return
		case t.kern != nil:
			t.kern(t.start, t.end, t.args)
		default:
			t.fn(t.start, t.end)
		}
		t.wg.Done()
	}
}

// Parallel splits [0, n) into one contiguous chunk per available worker and
// runs fn on the chunks concurrently, blocking until all complete. Chunk
// boundaries depend only on n and GOMAXPROCS, and every index is processed by
// exactly one invocation of fn, so ops whose per-index arithmetic does not
// depend on chunk grouping produce bitwise-identical results at any worker
// count.
//
// Unlike the seed implementation, chunks are executed by a persistent worker
// pool instead of freshly spawned goroutines, the pool resizes when
// GOMAXPROCS changes after first use, and the work-size cutoff lives in
// ParallelWork rather than being hardcoded here.
func Parallel(n int, fn func(start, end int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	ensurePool()
	chunk := (n + workers - 1) / workers
	wg := wgPool.Get().(*sync.WaitGroup)
	for start := chunk; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		t := task{fn: fn, start: start, end: end, wg: wg}
		wg.Add(1)
		select {
		case poolTasks <- t:
		default:
			// No idle worker: run the chunk here instead of queueing.
			fn(t.start, t.end)
			wg.Done()
		}
	}
	fn(0, chunk) // the caller always works on the first chunk itself
	wg.Wait()
	wgPool.Put(wg)
}

// ParallelWork runs fn over [0, n) like Parallel when the estimated total
// scalar work meets parallelThreshold, and serially otherwise. work is the
// caller's estimate of total scalar operations: m*n*k for a GEMM, elements
// times per-element cost for elementwise ops. This replaces the seed's
// n-based cutoff, which wrongly serialized low-row/high-work problems (e.g. a
// 32-row GEMM with huge k and n).
func ParallelWork(n, work int, fn func(start, end int)) {
	if work < parallelThreshold {
		fn(0, n)
		return
	}
	Parallel(n, fn)
}
