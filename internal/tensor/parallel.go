package tensor

import (
	"runtime"
	"sync"
)

// parallelThreshold is the estimated number of scalar operations below which
// an op runs serially: a pool handoff costs on the order of a microsecond, so
// smaller problems lose more to dispatch than they gain from extra cores.
// Callers express that decision through ParallelWork; Parallel itself splits
// whenever more than one worker is available.
const parallelThreshold = 1 << 15

// task is one contiguous chunk of a Parallel call, dispatched to the pool.
type task struct {
	fn         func(start, end int)
	start, end int
	wg         *sync.WaitGroup
}

var (
	poolOnce  sync.Once
	poolTasks chan task
)

// wgPool recycles the WaitGroup each Parallel call hands to its tasks; the
// group escapes into the task struct, so without pooling every parallelized
// op (every GEMM pass of every training step) would heap-allocate one.
var wgPool = sync.Pool{New: func() any { return new(sync.WaitGroup) }}

// ensurePool starts the persistent worker pool, sized to GOMAXPROCS at first
// use. The task channel is unbuffered, so a dispatch succeeds only when a
// worker is actually idle; Parallel runs any chunk it cannot hand off on the
// calling goroutine. That keeps nested Parallel calls (a worker's chunk
// itself calling Parallel) deadlock-free: work never waits in a queue that
// only blocked workers could drain.
func ensurePool() {
	poolOnce.Do(func() {
		poolTasks = make(chan task)
		for i := 0; i < runtime.GOMAXPROCS(0); i++ {
			go func() {
				for t := range poolTasks {
					t.fn(t.start, t.end)
					t.wg.Done()
				}
			}()
		}
	})
}

// Parallel splits [0, n) into one contiguous chunk per available worker and
// runs fn on the chunks concurrently, blocking until all complete. Chunk
// boundaries depend only on n and GOMAXPROCS, and every index is processed by
// exactly one invocation of fn, so ops whose per-index arithmetic does not
// depend on chunk grouping produce bitwise-identical results at any worker
// count.
//
// Unlike the seed implementation, chunks are executed by a persistent worker
// pool instead of freshly spawned goroutines, and the work-size cutoff lives
// in ParallelWork rather than being hardcoded here.
func Parallel(n int, fn func(start, end int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	ensurePool()
	chunk := (n + workers - 1) / workers
	wg := wgPool.Get().(*sync.WaitGroup)
	for start := chunk; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		t := task{fn: fn, start: start, end: end, wg: wg}
		wg.Add(1)
		select {
		case poolTasks <- t:
		default:
			// No idle worker: run the chunk here instead of queueing.
			fn(t.start, t.end)
			wg.Done()
		}
	}
	fn(0, chunk) // the caller always works on the first chunk itself
	wg.Wait()
	wgPool.Put(wg)
}

// ParallelWork runs fn over [0, n) like Parallel when the estimated total
// scalar work meets parallelThreshold, and serially otherwise. work is the
// caller's estimate of total scalar operations: m*n*k for a GEMM, elements
// times per-element cost for elementwise ops. This replaces the seed's
// n-based cutoff, which wrongly serialized low-row/high-work problems (e.g. a
// 32-row GEMM with huge k and n).
func ParallelWork(n, work int, fn func(start, end int)) {
	if work < parallelThreshold {
		fn(0, n)
		return
	}
	Parallel(n, fn)
}
