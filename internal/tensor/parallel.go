package tensor

import (
	"runtime"
	"sync"
)

// parallelThreshold is the amount of scalar work below which ops run serially;
// goroutine dispatch overhead dominates on smaller problems.
const parallelThreshold = 1 << 15

// Parallel splits [0, n) into contiguous chunks and runs fn on each chunk in
// its own goroutine, blocking until all complete. With n below a small bound
// or a single CPU it degrades to a plain call.
func Parallel(n int, fn func(start, end int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < 64 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for start := 0; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(s, e int) {
			defer wg.Done()
			fn(s, e)
		}(start, end)
	}
	wg.Wait()
}
