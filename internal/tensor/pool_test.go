package tensor

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolResizesWithGOMAXPROCS toggles GOMAXPROCS after the pool's first
// use and checks that the worker pool follows: growth on the next dispatch,
// best-effort shrink as idle workers retire, and correct results throughout
// (the seed pool was sized once at first use and never adapted).
func TestPoolResizesWithGOMAXPROCS(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	sum := func(n int) int64 {
		var s atomic.Int64
		Parallel(n, func(start, end int) {
			var local int64
			for i := start; i < end; i++ {
				local += int64(i)
			}
			s.Add(local)
		})
		return s.Load()
	}
	const n = 1 << 12
	want := int64(n) * (n - 1) / 2

	runtime.GOMAXPROCS(2)
	if got := sum(n); got != want {
		t.Fatalf("sum at GOMAXPROCS=2: got %d want %d", got, want)
	}
	if ps := int(poolSize.Load()); ps != 2 {
		t.Fatalf("pool size %d after dispatch at GOMAXPROCS=2", ps)
	}

	runtime.GOMAXPROCS(4)
	if got := sum(n); got != want {
		t.Fatalf("sum at GOMAXPROCS=4: got %d want %d", got, want)
	}
	if ps := int(poolSize.Load()); ps != 4 {
		t.Fatalf("pool did not grow to 4 workers, has %d", ps)
	}

	// Shrink is best-effort: a quit task is only handed to an idle worker,
	// so allow a few dispatch rounds for the retirements to land.
	runtime.GOMAXPROCS(2)
	deadline := time.Now().Add(5 * time.Second)
	for int(poolSize.Load()) != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("pool did not shrink to 2 workers, has %d", poolSize.Load())
		}
		if got := sum(n); got != want {
			t.Fatalf("sum during shrink: got %d want %d", got, want)
		}
		time.Sleep(time.Millisecond)
	}

	// The shrunken pool must still complete work correctly.
	if got := sum(n); got != want {
		t.Fatalf("sum after shrink: got %d want %d", got, want)
	}
}
