package tensor

import "math"

// Quantization layer of the int8 inference path (gemmq8.go holds the GEMM
// engine itself). The scheme is the standard gemmlowp/oneDNN inference
// recipe:
//
//   - Weights: per-output-channel symmetric int8. Each output channel j of a
//     [n, k] weight matrix gets scale[j] = maxabs_j / 127 and stores
//     round(w/scale) clamped to [-127, 127] (symmetric — never -128).
//     Quantization happens once, at model load, and the bytes are packed
//     straight into the GEMM engine's NR-column-strip, 4-k-per-quad layout,
//     so serving never re-packs weights.
//   - Activations: dynamic per-row asymmetric 7-bit codes in uint8 bytes.
//     Each row i of the activation matrix gets the affine map
//     q = round(x/scale + zp) over the row's [min, max] range widened to
//     include zero (so real zeros — window padding — quantize exactly and
//     all-zero rows survive bit-exactly), with codes in [0, 127] rather than
//     the full byte range. The sacrificed bit is what makes the integer
//     arithmetic exact: VPMADDUBSW sums adjacent u8*i8 products with i16
//     SATURATION, and with full-range codes 255*127*2 = 64770 overflows
//     32767 — on N(0,1) data roughly 0.2% of pairs clip, each clip a large
//     unbounded output error. With 7-bit codes the pair bound is
//     127*127*2 = 32258 < 32767, so saturation is structurally unreachable
//     and the quantized GEMM computes the exact i32 dot product of the
//     codes. One extra bit of quantization noise (bounded, ~scale/2 per
//     value) is a far better trade than rare unbounded clips. This is the
//     standard pre-VNNI mitigation (oneDNN calls it src-7-bit; FBGEMM
//     restricts the weight range instead).
//
// The integer GEMM then computes acc[i,j] = sum_l qa[i,l] * qw[j,l] (exactly,
// per the paragraph above — the i16 saturation semantics the micro-kernels
// pin never engage on engine-produced codes) and the f32 epilogue removes
// the zero-point term and rescales:
//
//	out[i,j] = (acc[i,j] - zp[i] * colSum[j]) * aScale[i] * wScale[j]
//
// where colSum[j] = sum_l qw[j,l] is precomputed per channel at load.

// gemmQuad is the reduction granularity of the quantized micro-kernel: four
// consecutive k-values per column are consumed by one VPMADDUBSW/VPMADDWD
// pair (one dword broadcast of four activation bytes against 4-byte weight
// groups). Packed operands pad k to a multiple of gemmQuad with zeros —
// zero bytes on both sides contribute exact zero to every accumulator.
const gemmQuad = 4

// QuantizedWeights is a weight matrix quantized per output channel and
// pre-packed for the quantized GEMM engine. It plays the B^T role of
// MatMulBT32: a logical [n, k] layer weight whose rows are output channels.
//
// Pack layout: NR-column strips over the full (padded) reduction dimension.
// Strip t holds output channels [t*NR, t*NR+NR); within a strip, quad q
// holds reduction indices [4q, 4q+4) as
//
//	Pack[(t*KQ+q)*NR*4 + c*4 + j]
//
// for column-in-strip c and k-offset j. Channels past n and reduction
// indices past k are zero-filled. The engine's KC loop addresses a block
// starting at reduction index pc by slicing at quad offset pc/4 — KC is
// always a multiple of gemmQuad (blocking.go rounds to 8) so blocks never
// split a quad.
type QuantizedWeights struct {
	Pack   []int8    // packed strips, ceil(n/NR) * KQ * NR*4 bytes
	Scale  []float32 // [n] per-output-channel dequantization scales
	ColSum []int32   // [n] sum of quantized weights per channel (zero-point term)
	N, K   int       // logical output channels and reduction depth
	KQ     int       // padded quad count: ceil(k / gemmQuad)
}

// QuantizeWeightsBT quantizes columns [from, to) of the [n, lda] weight
// matrix w into a packed per-output-channel int8 image. Layers whose GEMM
// consumes the whole weight pass (0, w.C); the recurrent cells quantize the
// input-projection and recurrent-projection column blocks of their fused
// [x|h] weight separately (the two operands are quantized with different
// row scales, so their products must be dequantized separately; see
// nn's forwardSeqQ8). Runs at model load — not a hot path; allocates freely.
func QuantizeWeightsBT(w Tensor32, from, to int) *QuantizedWeights {
	if from < 0 || to > w.C || from >= to {
		panic("tensor: QuantizeWeightsBT column range out of range")
	}
	n, k := w.R, to-from
	kq := (k + gemmQuad - 1) / gemmQuad
	strips := (n + gemmNR - 1) / gemmNR
	q := &QuantizedWeights{
		Pack:   make([]int8, strips*kq*gemmNR*gemmQuad),
		Scale:  make([]float32, n),
		ColSum: make([]int32, n),
		N:      n,
		K:      k,
		KQ:     kq,
	}
	for j := 0; j < n; j++ {
		row := w.Data[j*w.C+from : j*w.C+to]
		var maxAbs float32
		for _, v := range row {
			a := v
			if a < 0 {
				a = -a
			}
			if a > maxAbs {
				maxAbs = a
			}
		}
		scale := float32(1)
		if maxAbs > 0 {
			scale = maxAbs / 127
		}
		q.Scale[j] = scale
		t, c := j/gemmNR, j%gemmNR
		strip := q.Pack[t*kq*gemmNR*gemmQuad:]
		var sum int32
		for l, v := range row {
			qv := int32(math.Round(float64(v) / float64(scale)))
			if qv > 127 {
				qv = 127
			}
			if qv < -127 {
				qv = -127
			}
			sum += qv
			strip[(l/gemmQuad)*gemmNR*gemmQuad+c*gemmQuad+l%gemmQuad] = int8(qv)
		}
		q.ColSum[j] = sum
	}
	return q
}

// quantizeRowU8 computes the dynamic asymmetric activation parameters of one
// row: the quantization range is the row's [min, max] widened to include
// zero (so zero padding quantizes exactly), scale = (max-min)/127, and
// zp = round(-min/scale) in [0, 127] — 7-bit codes, the saturation-proofing
// described in the file comment. An all-zero row maps to scale 1, zp 0 —
// every quantized byte is 0 and the dequantized product is exactly zero.
// Returns the affine parameters; the caller writes the bytes (packing is
// layout-dependent).
//
//perfvec:hotpath
func quantizeRowU8(row []float32) (scale float32, zp int32) {
	var lo, hi float32 // range always includes 0
	for _, v := range row {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo == 0 && hi == 0 {
		return 1, 0
	}
	scale = (hi - lo) / 127
	zp = int32(math.Round(float64(-lo) / float64(scale)))
	if zp < 0 {
		zp = 0
	}
	if zp > 127 {
		zp = 127
	}
	return scale, zp
}

// quantizeU8 maps one activation value through the row's affine parameters,
// clamped to the 7-bit code range [0, 127]. zpf is the zero-point plus 0.5
// (precomputed once per row): adding it and truncating implements half-up
// rounding of x/scale + zp in one float32 add — the result is non-negative
// before the clamp whenever it matters, so Go's truncate-toward-zero
// conversion is floor. This runs once per activation element per GEMM and is
// deliberately free of float64 and math calls; the explicit float32
// conversion around the product forbids FMA contraction, keeping the value
// identical on every build.
//
//perfvec:hotpath
func quantizeU8(x, invScale, zpf float32) uint8 {
	q := int32(float32(x*invScale) + zpf)
	if q < 0 {
		q = 0
	}
	if q > 127 {
		q = 127
	}
	return uint8(q)
}
