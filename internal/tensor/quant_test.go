package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// packedWeight reads channel j's quantized value for k-position l out of the
// quad-strip pack layout (see QuantizeWeightsBT).
func packedWeight(q *QuantizedWeights, j, l int) int8 {
	t, c := j/gemmNR, j%gemmNR
	strip := q.Pack[t*q.KQ*gemmNR*gemmQuad:]
	return strip[(l/gemmQuad)*gemmNR*gemmQuad+c*gemmQuad+l%gemmQuad]
}

// TestQuantizeWeightsRoundTrip is the per-channel property test: for every
// output channel, dequantized weights land within half a quantization step
// of the originals, the scale is maxabs/127, quantized values stay inside
// [-127, 127] (the symmetric range — -128 is never produced), and ColSum
// matches the sum of the packed values.
func TestQuantizeWeightsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, sh := range [][2]int{{1, 1}, {3, 5}, {gemmNR, 51}, {gemmNR + 1, gemmKC}, {2*gemmNR + 5, gemmKC + 3}} {
		n, k := sh[0], sh[1]
		w := Tensor32{Data: randSlice(rng, n*k), R: n, C: k}
		q := QuantizeWeightsBT(w, 0, k)
		if q.N != n || q.K != k || q.KQ != (k+gemmQuad-1)/gemmQuad {
			t.Fatalf("%dx%d: dims N=%d K=%d KQ=%d", n, k, q.N, q.K, q.KQ)
		}
		for j := 0; j < n; j++ {
			var maxAbs float32
			for l := 0; l < k; l++ {
				if a := float32(math.Abs(float64(w.Data[j*k+l]))); a > maxAbs {
					maxAbs = a
				}
			}
			wantScale := maxAbs / 127
			if math.Float32bits(q.Scale[j]) != math.Float32bits(wantScale) {
				t.Fatalf("%dx%d ch %d: scale %v, want %v", n, k, j, q.Scale[j], wantScale)
			}
			var sum int32
			for l := 0; l < k; l++ {
				qv := packedWeight(q, j, l)
				if qv < -127 || qv > 127 {
					t.Fatalf("ch %d pos %d: quantized %d outside symmetric range", j, l, qv)
				}
				sum += int32(qv)
				back := float64(qv) * float64(q.Scale[j])
				if diff := math.Abs(back - float64(w.Data[j*k+l])); diff > float64(q.Scale[j])/2+1e-7 {
					t.Fatalf("ch %d pos %d: round-trip %v vs %v exceeds half-step %v",
						j, l, back, w.Data[j*k+l], q.Scale[j]/2)
				}
			}
			if sum != q.ColSum[j] {
				t.Fatalf("ch %d: ColSum %d, want %d", j, q.ColSum[j], sum)
			}
			// Padding positions past k must be exactly zero (they contribute
			// exact zeros to every quad product).
			for l := k; l < q.KQ*gemmQuad; l++ {
				if qv := packedWeight(q, j, l); qv != 0 {
					t.Fatalf("ch %d pad pos %d: %d, want 0", j, l, qv)
				}
			}
		}
	}
}

// TestQuantizeWeightsSaturationEdges pins the extremes: the channel max maps
// to exactly +/-127, an all-zero channel gets scale 1 (not 0 or NaN) with
// all-zero codes, and a column range selects exactly the requested slice.
func TestQuantizeWeightsSaturationEdges(t *testing.T) {
	// Channel 0: max magnitude is negative -> -127. Channel 1: all zero.
	// Channel 2: positive max -> +127, with a tiny value rounding to 0.
	w := Tensor32{Data: []float32{
		-4, 2, 1, 0,
		0, 0, 0, 0,
		8, 1e-6, -8, 4,
	}, R: 3, C: 4}
	q := QuantizeWeightsBT(w, 0, 4)
	if got := packedWeight(q, 0, 0); got != -127 {
		t.Fatalf("negative max quantized to %d, want -127", got)
	}
	if math.Float32bits(q.Scale[1]) != math.Float32bits(1) {
		t.Fatalf("all-zero channel scale %v, want 1", q.Scale[1])
	}
	for l := 0; l < 4; l++ {
		if got := packedWeight(q, 1, l); got != 0 {
			t.Fatalf("all-zero channel pos %d: %d", l, got)
		}
	}
	if got := packedWeight(q, 2, 0); got != 127 {
		t.Fatalf("positive max quantized to %d, want 127", got)
	}
	if got := packedWeight(q, 2, 2); got != -127 {
		t.Fatalf("negative extreme quantized to %d, want -127", got)
	}
	if got := packedWeight(q, 2, 1); got != 0 {
		t.Fatalf("tiny value quantized to %d, want 0", got)
	}

	// Column-range quantization equals quantizing the copied submatrix: the
	// split is how recurrent [x|h] concatenation weights become two
	// separately quantized operands.
	rng := rand.New(rand.NewSource(11))
	full := Tensor32{Data: randSlice(rng, 5*24), R: 5, C: 24}
	const from, to = 7, 20
	sub := Tensor32{Data: make([]float32, 5*(to-from)), R: 5, C: to - from}
	for j := 0; j < 5; j++ {
		copy(sub.Data[j*(to-from):(j+1)*(to-from)], full.Data[j*24+from:j*24+to])
	}
	qr := QuantizeWeightsBT(full, from, to)
	qs := QuantizeWeightsBT(sub, 0, to-from)
	if qr.K != to-from || qr.KQ != qs.KQ {
		t.Fatalf("range dims K=%d KQ=%d vs sub KQ=%d", qr.K, qr.KQ, qs.KQ)
	}
	for j := 0; j < 5; j++ {
		if math.Float32bits(qr.Scale[j]) != math.Float32bits(qs.Scale[j]) || qr.ColSum[j] != qs.ColSum[j] {
			t.Fatalf("ch %d: range scale/colsum %v/%d vs sub %v/%d",
				j, qr.Scale[j], qr.ColSum[j], qs.Scale[j], qs.ColSum[j])
		}
		for l := 0; l < to-from; l++ {
			if packedWeight(qr, j, l) != packedWeight(qs, j, l) {
				t.Fatalf("ch %d pos %d: range %d vs sub %d", j, l, packedWeight(qr, j, l), packedWeight(qs, j, l))
			}
		}
	}
}

// TestQuantizeRowU8RoundTrip is the activation-side property test: the
// affine 7-bit quantization covers the row's range (widened to include
// zero), round-trips every value within half a step, maps exact zero to the
// zero-point exactly, and clamps at the 0/127 code edges (the 7-bit ceiling
// that makes the integer GEMM saturation-free; see quant.go).
func TestQuantizeRowU8RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		row := randSlice(rng, 1+rng.Intn(80))
		if trial%3 == 0 {
			row[rng.Intn(len(row))] = 0 // ensure exact zeros appear
		}
		scale, zp := quantizeRowU8(row)
		if zp < 0 || zp > 127 {
			t.Fatalf("zero-point %d outside 7-bit code range", zp)
		}
		if scale <= 0 {
			t.Fatalf("non-positive scale %v", scale)
		}
		inv := 1 / scale
		zpf := float32(zp) + 0.5
		for i, v := range row {
			code := quantizeU8(v, inv, zpf)
			back := float64(int32(code)-zp) * float64(scale)
			// Half a step plus a little float32 arithmetic slop (the hot
			// quantizer works in single precision by design).
			if diff := math.Abs(back - float64(v)); diff > float64(scale)*(0.5+1e-4) {
				t.Fatalf("trial %d pos %d: round-trip %v vs %v exceeds half-step %v", trial, i, back, v, scale/2)
			}
			if v == 0 && int32(code) != zp {
				t.Fatalf("trial %d pos %d: zero quantized to %d, zero-point %d", trial, i, code, zp)
			}
		}
	}

	// All-zero row: the pinned degenerate case is scale 1, zero-point 0, so
	// every code is 0 and dequantization is exactly zero.
	zeros := make([]float32, 17)
	scale, zp := quantizeRowU8(zeros)
	if math.Float32bits(scale) != math.Float32bits(1) || zp != 0 {
		t.Fatalf("all-zero row: scale %v zp %d, want 1 and 0", scale, zp)
	}

	// Saturation at the code edges: values beyond the calibrated range (as
	// happens when quantizeU8 is fed a value outside the row it was
	// calibrated on) clamp to 0 and 127 rather than wrapping.
	calib := []float32{-2, 6}
	scale, zp = quantizeRowU8(calib)
	inv := 1 / scale
	zpf := float32(zp) + 0.5
	if got := quantizeU8(-50, inv, zpf); got != 0 {
		t.Fatalf("below-range value quantized to %d, want 0", got)
	}
	if got := quantizeU8(1e6, inv, zpf); got != 127 {
		t.Fatalf("above-range value quantized to %d, want 127", got)
	}
	if got := quantizeU8(6, inv, zpf); got != 127 {
		t.Fatalf("range max quantized to %d, want 127", got)
	}

	// A positive-only row still includes zero in its range so that padding
	// and sparse zeros stay exactly representable: lo widens to 0, hence
	// zero-point 0.
	pos := []float32{3, 5, 4}
	scale, zp = quantizeRowU8(pos)
	if zp != 0 {
		t.Fatalf("positive-only row zero-point %d, want 0", zp)
	}
	if got := quantizeU8(5, 1/scale, float32(zp)+0.5); got != 127 {
		t.Fatalf("positive-only max code %d, want 127", got)
	}
}
