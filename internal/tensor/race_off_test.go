//go:build !race

package tensor

// raceEnabled mirrors the race detector's build state: the detector's
// instrumentation performs heap allocations of its own, so the strict
// AllocsPerRun assertions only hold on uninstrumented builds. The
// bitwise-equality and slab-growth assertions are logic-level and run
// under race too.
const raceEnabled = false
