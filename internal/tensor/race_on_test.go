//go:build race

package tensor

// raceEnabled: see race_off_test.go.
const raceEnabled = true
