package tensor

// Typed op-record autodiff tape.
//
// Every differentiable op used to append a backward *closure* to the tape.
// Closures made the backward pass trivially extensible, but each one is a
// heap allocation (the func value plus the capture block), and at ~300 ops
// per training step they were the last per-step heap traffic left after the
// tensor arena landed. The tape now records a typed, fixed-size opRecord per
// op instead: an op-kind enum, the operand/output/saved-activation tensor
// refs, and the op's small scalar arguments. Records live in one growable
// slice on the Tape whose capacity Reset retains, so after the warm-up step
// recording allocates nothing, and Backward dispatches each record through
// the static per-kind VJP table below instead of invoking a captured func.
//
// The VJP bodies are the former closure bodies verbatim — same expressions,
// same accumulation order, same ParallelWork chunking — so gradients are
// bitwise identical to the closure tape's (the gradcheck and fused-kernel
// bitwise tests pin this), and replaying Backward twice over the same
// records yields bit-identical gradients (records are read-only inputs to
// the VJPs; see records_test.go).
//
// Record lifetime follows the arena's tensor-lifetime invariant: a record
// references step-lifetime tensors, so records, like pooled tensors, must
// not outlive their tape's Reset. Reset clears the record slice (dropping
// the tensor refs) in the same breath as it recycles the arena.

// opKind identifies a differentiable op in a recorded opRecord. The order is
// arbitrary but fixed; vjpTable is indexed by it.
type opKind uint8

// Op kinds, one per differentiable op in the package.
const (
	opMatMul opKind = iota
	opMatMulBT
	opMatMulBTCat
	opMatMulBTCols
	opAdd
	opAddBias
	opSub
	opMul
	opScale
	opSigmoid
	opTanh
	opReLU
	opSoftmaxRows
	opAttentionSoftmax
	opConcatCols
	opSliceCols
	opSliceRows
	opTranspose
	opSum
	opLayerNorm
	opLSTMGates
	opGRUGates
	opGateCombine
	opAddBiasInPlace
	opSigmoidInPlace
	opTanhInPlace
	opReLUInPlace
	opStackRows
	opConcatRows
	opKinds // count; must stay last
)

// opNames maps each op kind to its histogram label (see Tape.OpHistogram).
// Completeness is asserted by TestOpNamesComplete.
var opNames = [opKinds]string{
	opMatMul:           "MatMul",
	opMatMulBT:         "MatMulBT",
	opMatMulBTCat:      "MatMulBTCat",
	opMatMulBTCols:     "MatMulBTCols",
	opAdd:              "Add",
	opAddBias:          "AddBias",
	opSub:              "Sub",
	opMul:              "Mul",
	opScale:            "Scale",
	opSigmoid:          "Sigmoid",
	opTanh:             "Tanh",
	opReLU:             "ReLU",
	opSoftmaxRows:      "SoftmaxRows",
	opAttentionSoftmax: "AttentionSoftmax",
	opConcatCols:       "ConcatCols",
	opSliceCols:        "SliceCols",
	opSliceRows:        "SliceRows",
	opTranspose:        "Transpose",
	opSum:              "Sum",
	opLayerNorm:        "LayerNorm",
	opLSTMGates:        "LSTMGates",
	opGRUGates:         "GRUGates",
	opGateCombine:      "GateCombine",
	opAddBiasInPlace:   "AddBiasInPlace",
	opSigmoidInPlace:   "SigmoidInPlace",
	opTanhInPlace:      "TanhInPlace",
	opReLUInPlace:      "ReLUInPlace",
	opStackRows:        "StackRows",
	opConcatRows:       "ConcatRows",
}

// opRecord is one recorded op: everything its VJP needs, in a fixed-size
// struct appended by value to the tape's record slice (no per-op heap
// allocation). Field meaning is per-kind; each vjp* function documents its
// layout. Dimensions are not stored — VJPs rederive them from the recorded
// tensors' shapes exactly as the forward pass did.
type opRecord struct {
	kind opKind
	i0   int     // first int arg (column/row from, StackRows row)
	i1   int     // second int arg (column/row to)
	f0   float32 // scalar arg (Scale factor, AttentionSoftmax scale)

	a, b, c, d *Tensor // operand tensors
	out, out2  *Tensor // output tensors (out2: second output of gate kernels)
	s1, s2     *Tensor // saved activations/scratch kept for the backward pass

	// ts holds the operands of variadic ops (StackRows, ConcatRows). The
	// slice is the caller's; like every recorded tensor it must stay
	// unmutated until Backward and is released on Reset.
	ts []*Tensor
}

// vjp is one entry of the static dispatch table: it reads an opRecord and
// accumulates the op's vector-Jacobian product into the operands' gradients.
// VJPs allocate their scratch through the tape (arena-pooled on arena
// tapes), exactly as the backward closures did.
type vjp func(tp *Tape, r *opRecord)

// vjpTable maps each op kind to its VJP. Indexed dispatch replaces the
// closure call: Backward walks the records in reverse and calls
// vjpTable[r.kind](tp, r). Completeness (no nil entries) is asserted by
// TestVJPTableComplete.
var vjpTable = [opKinds]vjp{
	opMatMul:           vjpMatMul,
	opMatMulBT:         vjpMatMulBT,
	opMatMulBTCat:      vjpMatMulBTCat,
	opMatMulBTCols:     vjpMatMulBTCols,
	opAdd:              vjpAdd,
	opAddBias:          vjpAddBias,
	opSub:              vjpSub,
	opMul:              vjpMul,
	opScale:            vjpScale,
	opSigmoid:          vjpSigmoid,
	opTanh:             vjpTanh,
	opReLU:             vjpReLU,
	opSoftmaxRows:      vjpSoftmaxRows,
	opAttentionSoftmax: vjpAttentionSoftmax,
	opConcatCols:       vjpConcatCols,
	opSliceCols:        vjpSliceCols,
	opSliceRows:        vjpSliceRows,
	opTranspose:        vjpTranspose,
	opSum:              vjpSum,
	opLayerNorm:        vjpLayerNorm,
	opLSTMGates:        vjpLSTMGates,
	opGRUGates:         vjpGRUGates,
	opGateCombine:      vjpGateCombine,
	opAddBiasInPlace:   vjpAddBiasInPlace,
	opSigmoidInPlace:   vjpSigmoidInPlace,
	opTanhInPlace:      vjpTanhInPlace,
	opReLUInPlace:      vjpReLUInPlace,
	opStackRows:        vjpStackRows,
	opConcatRows:       vjpConcatRows,
}
