package tensor

import (
	"math/rand"
	"testing"
)

// Tests for the typed op-record tape: VJP table completeness, replay
// determinism, record-storage reuse, and the inference-tape contract.

// TestVJPTableComplete asserts every op kind dispatches to a VJP — a nil
// entry would panic mid-Backward the first time that op is recorded.
func TestVJPTableComplete(t *testing.T) {
	for k := opKind(0); k < opKinds; k++ {
		if vjpTable[k] == nil {
			t.Errorf("vjpTable[%d] is nil; every op kind needs a VJP entry", k)
		}
	}
}

func TestOpNamesComplete(t *testing.T) {
	for k := opKind(0); k < opKinds; k++ {
		if opNames[k] == "" {
			t.Errorf("opNames[%d] is empty; every op kind needs a histogram label", k)
		}
	}
}

// TestOpHistogramKnownGraph checks the profiling hook against a graph whose
// op mix is known by construction, and its lifecycle: nil tapes are empty,
// inference tapes record nothing, Reset clears the counts.
func TestOpHistogramKnownGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := Randn(rng, 0.5, 4, 4)
	b := Randn(rng, 0.5, 4, 4)
	tp := NewTape()
	x := MatMul(tp, a, b)
	x = Sigmoid(tp, Add(tp, x, MatMul(tp, a, b)))
	loss := Sum(tp, Mul(tp, x, x))
	tp.Backward(loss)

	want := map[string]int{"MatMul": 2, "Add": 1, "Sigmoid": 1, "Mul": 1, "Sum": 1}
	got := tp.OpHistogram()
	if len(got) != len(want) {
		t.Fatalf("histogram has %d kinds %v, want %d %v", len(got), got, len(want), want)
	}
	total := 0
	for name, n := range want {
		if got[name] != n {
			t.Errorf("histogram[%q] = %d, want %d", name, got[name], n)
		}
		total += n
	}
	if tp.Len() != total {
		t.Errorf("tape has %d records but histogram sums to %d", tp.Len(), total)
	}

	if h := (*Tape)(nil).OpHistogram(); len(h) != 0 {
		t.Errorf("nil tape histogram = %v, want empty", h)
	}
	inf := NewInferenceTape()
	MatMul(inf, a, b)
	if h := inf.OpHistogram(); len(h) != 0 {
		t.Errorf("inference tape histogram = %v, want empty (nothing recorded)", h)
	}
	tp.Reset()
	if h := tp.OpHistogram(); len(h) != 0 {
		t.Errorf("post-Reset histogram = %v, want empty", h)
	}
}

// recordGraph builds a small graph exercising a broad mix of record kinds
// (GEMMs, elementwise, fused gates, softmax, layernorm, stacking) on tp and
// returns the scalar loss plus the parameters whose gradients the tests
// compare.
func recordGraph(tp *Tape, seed int64) (*Tensor, []*Tensor) {
	rng := rand.New(rand.NewSource(seed))
	x := Randn(rng, 0.5, 4, 6)
	w := Randn(rng, 0.5, 8, 6)
	gamma := Randn(rng, 0.2, 8)
	beta := Randn(rng, 0.2, 8)
	bias := Randn(rng, 0.5, 8)
	cell := Randn(rng, 0.5, 4, 2)

	h := MatMulBT(tp, x, w)                 // [4,8]
	h = LayerNorm(tp, h, gamma, beta, 1e-5) // [4,8]
	h = AddBias(tp, h, bias)                // [4,8]
	hs, cs := LSTMGates(tp, h, bias, cell)  // [4,2] x2
	att := AttentionSoftmax(tp, MatMul(tp, hs, Transpose(tp, cs)), 0.5)
	o := MatMul(tp, att, ConcatCols(tp, hs, cs)) // [4,4]
	st := StackRows(tp, []*Tensor{o, o}, 1)      // [2,4]
	loss := Mean(tp, Mul(tp, st, st))
	return loss, []*Tensor{x, w, gamma, beta, bias, cell}
}

// zeroRecordedGrads clears the gradient of every tensor referenced by the
// tape's records (outputs, operands, scratch, variadic operands) plus the
// loss, restoring the pre-Backward gradient state without touching Data.
func zeroRecordedGrads(tp *Tape, loss *Tensor) {
	wipe := func(t *Tensor) {
		if t != nil && t.Grad != nil {
			clear(t.Grad)
		}
	}
	for i := range tp.recs {
		r := &tp.recs[i]
		wipe(r.a)
		wipe(r.b)
		wipe(r.c)
		wipe(r.d)
		wipe(r.out)
		wipe(r.out2)
		wipe(r.s1)
		wipe(r.s2)
		for _, x := range r.ts {
			wipe(x)
		}
	}
	wipe(loss)
}

// TestBackwardReplayDeterminism records one step and runs Backward twice off
// the same records (gradients zeroed in between): the records are read-only
// inputs to the VJP table, so the replay must reproduce every gradient bit.
func TestBackwardReplayDeterminism(t *testing.T) {
	tp := NewTapeArena()
	loss, params := recordGraph(tp, 99)
	tp.Backward(loss)
	first := make([][]float32, len(params))
	for i, p := range params {
		first[i] = append([]float32(nil), p.Grad...)
	}

	zeroRecordedGrads(tp, loss)
	tp.Backward(loss)
	for i, p := range params {
		for j := range first[i] {
			if p.Grad[j] != first[i][j] {
				t.Fatalf("param %d grad[%d] differs across replays: %v vs %v",
					i, j, first[i][j], p.Grad[j])
			}
		}
	}
}

// TestRecordStorageSteadyState re-records the same graph across Resets: the
// record slice must stop growing after the first pass, like the arena.
func TestRecordStorageSteadyState(t *testing.T) {
	tp := NewTapeArena()
	run := func() {
		tp.Reset()
		loss, _ := recordGraph(tp, 7)
		tp.Backward(loss)
	}
	run()
	recs, warm := tp.RecordStats()
	if recs == 0 {
		t.Fatal("graph recorded no ops")
	}
	for i := 0; i < 5; i++ {
		run()
	}
	recs2, grows := tp.RecordStats()
	if recs2 != recs {
		t.Errorf("steady-state record count changed: %d -> %d", recs, recs2)
	}
	if grows != warm {
		t.Errorf("record slice grew %d times after warm-up; steady-state recording must reuse capacity", grows-warm)
	}
}

// TestInferenceTape checks the pooled inference mode: ops record nothing,
// outputs match the nil-tape computation bitwise, the arena recycles across
// Resets, and Backward refuses to run.
func TestInferenceTape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := Randn(rng, 0.5, 4, 4)
	b := Randn(rng, 0.5, 4, 4)

	tp := NewInferenceTape()
	got := Tanh(tp, MatMul(tp, a, b))
	want := Tanh(nil, MatMul(nil, a, b))
	if tp.Len() != 0 {
		t.Fatalf("inference tape recorded %d ops; must record nothing", tp.Len())
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("inference tape output differs from nil tape at %d", i)
		}
	}

	tp.Reset()
	_, warm := tp.Arena().Stats()
	for i := 0; i < 4; i++ {
		tp.Reset()
		Tanh(tp, MatMul(tp, a, b))
	}
	if _, m := tp.Arena().Stats(); m != warm {
		t.Errorf("inference tape arena missed %d times after warm-up", m-warm)
	}

	defer func() {
		if recover() == nil {
			t.Error("Backward on an inference tape must panic")
		}
	}()
	loss := Sum(tp, a)
	tp.Backward(loss)
}

// TestTensorsSlabPooling checks Tape.Tensors: fresh on nil/plain tapes,
// pooled and recycled (zeroed) on arena tapes.
func TestTensorsSlabPooling(t *testing.T) {
	var nilTape *Tape
	if s := nilTape.Tensors(3); len(s) != 3 {
		t.Fatalf("nil tape Tensors(3) has length %d", len(s))
	}
	tp := NewTapeArena()
	s1 := tp.Tensors(4)
	s1[0] = New(1)
	tp.Reset()
	s2 := tp.Tensors(4)
	if &s1[0] != &s2[0] {
		t.Error("arena tape did not recycle the tensor slab across Reset")
	}
	if s2[0] != nil {
		t.Error("recycled slab not zeroed")
	}
}
