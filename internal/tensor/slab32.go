package tensor

// Forward-only float32 inference arena. The training path allocates tensors
// through Tape/Arena because autodiff needs per-op records and gradient
// buffers; inference needs neither, so the serving fast path runs on Slab32:
// a grow-only bump allocator handing out zeroed matrices whose lifetime is
// one encode pass (everything taken between two Resets dies together at the
// next Reset). After warm-up a pass performs zero heap allocations.

// Tensor32 is a forward-only float32 matrix: a view into a Slab32 (or any
// caller-owned buffer) with no gradient, no tape, and value semantics. Data
// is row-major with R rows of C contiguous columns.
type Tensor32 struct {
	Data []float32
	R, C int
}

// Rows returns the number of rows.
func (t Tensor32) Rows() int { return t.R }

// Cols returns the number of columns.
func (t Tensor32) Cols() int { return t.C }

// Row returns row i as a slice aliasing the tensor's storage.
//
//perfvec:hotpath
func (t Tensor32) Row(i int) []float32 { return t.Data[i*t.C : (i+1)*t.C] }

// At returns the element at row i, column j.
func (t Tensor32) At(i, j int) float32 { return t.Data[i*t.C+j] }

// Slab32 is the inference arena: matrices and matrix-slice headers are
// bump-allocated from grow-only backing arrays and recycled wholesale by
// Reset. The zero value is ready to use.
//
// Lifetime rule: a slice or Tensor32 obtained from a Slab32 is valid until
// the next Reset, even across an intervening growth (growth allocates a
// fresh backing array; outstanding slices keep aliasing the old one, which
// stays live through them). A Slab32 is not safe for concurrent use; the
// serving path gives each pooled Encoder its own.
type Slab32 struct {
	buf   []float32
	off   int
	mats  []Tensor32
	moff  int
	grows int
}

// Take returns a zeroed slice of n float32s valid until the next Reset.
//
//perfvec:hotpath
func (s *Slab32) Take(n int) []float32 {
	if s.off+n > len(s.buf) {
		sz := 2 * len(s.buf)
		if sz < n {
			sz = n
		}
		if sz < 1<<12 {
			sz = 1 << 12
		}
		s.buf = make([]float32, sz) //perfvec:allow hotalloc -- slab warm-up growth; steady state reuses the high-water buffer
		s.off = 0
		s.grows++
	}
	out := s.buf[s.off : s.off+n : s.off+n]
	s.off += n
	clear(out)
	return out
}

// Mat returns a zeroed r x c matrix backed by the slab.
//
//perfvec:hotpath
func (s *Slab32) Mat(r, c int) Tensor32 {
	return Tensor32{Data: s.Take(r * c), R: r, C: c}
}

// Mats returns a cleared slice of n Tensor32 headers backed by the slab —
// the per-timestep tensor lists the sequence cells need without allocating.
//
//perfvec:hotpath
func (s *Slab32) Mats(n int) []Tensor32 {
	if s.moff+n > len(s.mats) {
		sz := 2 * len(s.mats)
		if sz < n {
			sz = n
		}
		if sz < 16 {
			sz = 16
		}
		s.mats = make([]Tensor32, sz) //perfvec:allow hotalloc -- slab warm-up growth; steady state reuses the high-water buffer
		s.moff = 0
		s.grows++
	}
	out := s.mats[s.moff : s.moff+n : s.moff+n]
	s.moff += n
	for i := range out {
		out[i] = Tensor32{}
	}
	return out
}

// Reset recycles the slab: everything previously taken is dead and the
// backing arrays are reused from the start.
func (s *Slab32) Reset() { s.off, s.moff = 0, 0 }

// Grows reports how many backing-array growths the slab has performed —
// zero between Resets once warmed up, which the alloc tests pin.
func (s *Slab32) Grows() int { return s.grows }
