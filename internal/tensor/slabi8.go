package tensor

// Quantized-inference arena. The int8 serving path needs three scratch
// families per GEMM — packed u8 activations, i32 accumulators, and the
// per-row f32 quantization parameters — none of which outlive the MatMulQ8
// call that took them. SlabI8 is the Slab32 idiom applied to those element
// types: grow-only bump pools handing out zeroed slices, recycled wholesale
// by Reset. After warm-up a quantized encode pass performs zero heap
// allocations; Grows is the regression counter the alloc tests pin.

// SlabI8 is the quantized-inference scratch arena: one grow-only pool per
// element type the u8 x i8 GEMM needs. The zero value is ready to use.
//
// Lifetime rule: slices obtained from a SlabI8 are valid until the next
// Reset, even across an intervening growth (growth allocates a fresh backing
// array; outstanding slices keep aliasing the old one). MatMulQ8 resets the
// slab it is handed at entry — every quantized GEMM's scratch is dead the
// moment the call returns, so callers must not hold SlabI8 slices across
// calls. A SlabI8 is not safe for concurrent use; the serving path gives
// each pooled Encoder its own.
type SlabI8 struct {
	u8    []uint8
	uoff  int
	i32   []int32
	ioff  int
	f32   []float32
	foff  int
	grows int
}

// TakeU8 returns a zeroed slice of n bytes valid until the next Reset.
//
//perfvec:hotpath
func (s *SlabI8) TakeU8(n int) []uint8 {
	if s.uoff+n > len(s.u8) {
		sz := 2 * len(s.u8)
		if sz < n {
			sz = n
		}
		if sz < 1<<12 {
			sz = 1 << 12
		}
		s.u8 = make([]uint8, sz) //perfvec:allow hotalloc -- slab warm-up growth; steady state reuses the high-water buffer
		s.uoff = 0
		s.grows++
	}
	out := s.u8[s.uoff : s.uoff+n : s.uoff+n]
	s.uoff += n
	clear(out)
	return out
}

// TakeI32 returns a zeroed slice of n int32s valid until the next Reset.
//
//perfvec:hotpath
func (s *SlabI8) TakeI32(n int) []int32 {
	if s.ioff+n > len(s.i32) {
		sz := 2 * len(s.i32)
		if sz < n {
			sz = n
		}
		if sz < 1<<12 {
			sz = 1 << 12
		}
		s.i32 = make([]int32, sz) //perfvec:allow hotalloc -- slab warm-up growth; steady state reuses the high-water buffer
		s.ioff = 0
		s.grows++
	}
	out := s.i32[s.ioff : s.ioff+n : s.ioff+n]
	s.ioff += n
	clear(out)
	return out
}

// TakeF32 returns a zeroed slice of n float32s valid until the next Reset —
// the per-row activation scales a quantized GEMM's epilogue reads.
//
//perfvec:hotpath
func (s *SlabI8) TakeF32(n int) []float32 {
	if s.foff+n > len(s.f32) {
		sz := 2 * len(s.f32)
		if sz < n {
			sz = n
		}
		if sz < 1<<12 {
			sz = 1 << 12
		}
		s.f32 = make([]float32, sz) //perfvec:allow hotalloc -- slab warm-up growth; steady state reuses the high-water buffer
		s.foff = 0
		s.grows++
	}
	out := s.f32[s.foff : s.foff+n : s.foff+n]
	s.foff += n
	clear(out)
	return out
}

// Reset recycles the slab: everything previously taken is dead and the
// backing arrays are reused from the start.
func (s *SlabI8) Reset() { s.uoff, s.ioff, s.foff = 0, 0, 0 }

// Grows reports how many backing-array growths the slab has performed —
// zero between Resets once warmed up, which the alloc tests pin.
func (s *SlabI8) Grows() int { return s.grows }
