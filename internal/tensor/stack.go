package tensor

import "fmt"

// StackRows gathers row `row` from each matrix in xs and stacks them into a
// [len(xs), cols] tensor. Gradients scatter back into the source rows. This
// is how sequence models reorganize per-timestep batches ([T] x [B,F]) into
// per-sample sequences ([T,F]) for attention. The xs slice itself is kept in
// the op record, so it must not be mutated before Backward (sequence models
// pass tape-pooled slices from Tape.Tensors, which share the step lifetime).
func StackRows(tp *Tape, xs []*Tensor, row int) *Tensor {
	if len(xs) == 0 {
		panic("tensor: StackRows needs at least one tensor")
	}
	n := xs[0].Cols()
	out := tp.alloc(len(xs), n)
	for t, x := range xs {
		if x.Cols() != n {
			panic(fmt.Sprintf("tensor: StackRows column mismatch %d vs %d", x.Cols(), n))
		}
		copy(out.Data[t*n:(t+1)*n], x.Row(row))
	}
	tp.record(opRecord{kind: opStackRows, out: out, ts: xs, i0: row})
	return out
}

// vjpStackRows: out, ts=xs, i0=row.
//perfvec:hotpath
func vjpStackRows(_ *Tape, r *opRecord) {
	g := r.out.Grad
	if g == nil {
		return
	}
	n := r.out.Cols()
	row := r.i0
	for t, x := range r.ts {
		gx := x.ensureGrad()
		gr := g[t*n : (t+1)*n]
		dst := gx[row*n : (row+1)*n]
		for j, gv := range gr {
			dst[j] += gv
		}
	}
}

// ConcatRows stacks matrices with equal column counts vertically. The
// variadic operand slice is kept in the op record (see StackRows).
func ConcatRows(tp *Tape, xs ...*Tensor) *Tensor {
	if len(xs) == 0 {
		panic("tensor: ConcatRows needs at least one tensor")
	}
	n := xs[0].Cols()
	rows := 0
	for _, x := range xs {
		if x.Cols() != n {
			panic("tensor: ConcatRows column mismatch")
		}
		rows += x.Rows()
	}
	out := tp.alloc(rows, n)
	off := 0
	for _, x := range xs {
		copy(out.Data[off:], x.Data)
		off += len(x.Data)
	}
	tp.record(opRecord{kind: opConcatRows, out: out, ts: xs})
	return out
}

// vjpConcatRows: out, ts=xs.
//perfvec:hotpath
func vjpConcatRows(_ *Tape, r *opRecord) {
	g := r.out.Grad
	if g == nil {
		return
	}
	off := 0
	for _, x := range r.ts {
		gx := x.ensureGrad()
		for i := range gx {
			gx[i] += g[off+i]
		}
		off += len(gx)
	}
}
