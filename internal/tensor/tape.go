package tensor

// Tape records the backward closures of differentiable operations in
// execution order so they can be replayed in reverse to compute gradients.
//
// A nil *Tape is valid everywhere an op takes one and means "inference mode":
// the op computes its result without recording anything.
//
// A Tape is not safe for concurrent use. Data-parallel training (see
// perfvec.Trainer) gives each gradient worker its own Tape over its own
// shadow parameter tensors — parameters share Data but not Grad — and reuses
// the tapes across steps via Reset, which retains the closure slice's
// capacity. Ops recorded on one tape may still parallelize internally: the
// kernels in matmul.go and the elementwise loops in ops.go split their own
// work across the worker pool in parallel.go.
type Tape struct {
	ops []func()
}

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{} }

// record appends a backward closure; no-op on a nil tape.
func (tp *Tape) record(fn func()) {
	if tp != nil {
		tp.ops = append(tp.ops, fn)
	}
}

// Len returns the number of recorded operations.
func (tp *Tape) Len() int {
	if tp == nil {
		return 0
	}
	return len(tp.ops)
}

// Reset clears the tape for reuse, retaining capacity.
func (tp *Tape) Reset() { tp.ops = tp.ops[:0] }

// Backward seeds d(loss)/d(loss) = 1 and runs all recorded closures in
// reverse, accumulating gradients into every tensor that participated.
// loss must be a scalar (single-element) tensor produced on this tape.
func (tp *Tape) Backward(loss *Tensor) {
	if len(loss.Data) != 1 {
		panic("tensor: Backward requires a scalar loss")
	}
	g := loss.ensureGrad()
	g[0] = 1
	for i := len(tp.ops) - 1; i >= 0; i-- {
		tp.ops[i]()
	}
}
