package tensor

// Tape records differentiable operations in execution order as typed op
// records (see records.go) so they can be replayed in reverse to compute
// gradients through the static VJP table.
//
// A nil *Tape is valid everywhere an op takes one and means "inference mode":
// the op computes its result without recording anything and allocates fresh
// output tensors. NewInferenceTape gives the pooled variant: it also records
// nothing, but draws outputs from an arena so repeated inference passes
// (evaluation, streaming representation generation) run allocation-free.
//
// A Tape is not safe for concurrent use. Data-parallel training (see
// perfvec.Trainer) gives each gradient worker its own Tape over its own
// shadow parameter tensors — parameters share Data but not Grad — and reuses
// the tapes across steps via Reset, which retains the record slice's
// capacity. Ops recorded on one tape may still parallelize internally: the
// kernels in matmul.go and the elementwise loops in ops.go split their own
// work across the worker pool in parallel.go.
type Tape struct {
	recs  []opRecord
	arena *Arena
	// infer marks an inference tape: arena allocation without recording.
	infer bool
	// recGrows counts record-slice capacity growths — the record analogue of
	// the arena's miss counter. Steady-state training must stop growing after
	// the warm-up step; the regression tests assert it.
	recGrows int
}

// NewTape returns an empty recording tape. Op outputs are freshly allocated;
// use NewTapeArena for the pooled variant the training hot path runs on.
func NewTape() *Tape { return &Tape{} }

// NewTapeArena returns a recording tape backed by its own Arena: every op
// output, gradient buffer, and scratch tensor recorded through the tape is
// pooled, and Reset recycles them all. Tensors produced on such a tape are
// only valid until the next Reset (see Arena) — and so are its records,
// which reference them.
func NewTapeArena() *Tape { return &Tape{arena: NewArena()} }

// NewInferenceTape returns an arena-backed tape that records nothing: ops
// run in inference mode but draw their outputs (and internal scratch) from
// the pool, so a steady-state evaluation loop that Resets between batches
// performs zero allocations. Backward panics on an inference tape.
func NewInferenceTape() *Tape { return &Tape{arena: NewArena(), infer: true} }

// Arena returns the tape's arena, or nil for a plain tape.
func (tp *Tape) Arena() *Arena {
	if tp == nil {
		return nil
	}
	return tp.arena
}

// alloc returns a zeroed output tensor for an op running on this tape: pooled
// through the arena when the tape has one, freshly allocated otherwise (and
// always fresh in inference mode, tp == nil).
func (tp *Tape) alloc(shape ...int) *Tensor {
	if tp == nil || tp.arena == nil {
		return New(shape...)
	}
	return tp.arena.Get(shape...)
}

// Zeros returns a zeroed step-lifetime tensor allocated through tp's arena
// (or freshly when tp has none). Sequence models use it for initial hidden
// and cell states, and Dataset batching for input windows: buffers that are
// rebuilt every step and must not survive the tape's Reset.
func Zeros(tp *Tape, shape ...int) *Tensor { return tp.alloc(shape...) }

// Tensors returns a step-lifetime []*Tensor of length n, pooled through tp's
// arena when it has one (recycled — zeroed — by Reset, like every arena
// tensor) and freshly allocated otherwise. Sequence models use it for their
// per-timestep tensor lists, which were the last per-step slice allocations
// in the training hot path.
func (tp *Tape) Tensors(n int) []*Tensor {
	if tp == nil || tp.arena == nil {
		return make([]*Tensor, n)
	}
	return tp.arena.Tensors(n)
}

// record appends an op record; no-op on a nil or inference tape. The record
// slice's capacity is retained across Reset, so steady-state recording
// allocates nothing (recGrows tracks warm-up growths).
func (tp *Tape) record(r opRecord) {
	if tp == nil || tp.infer {
		return
	}
	if len(tp.recs) == cap(tp.recs) {
		tp.recGrows++
	}
	tp.recs = append(tp.recs, r)
}

// Len returns the number of recorded operations.
func (tp *Tape) Len() int {
	if tp == nil {
		return 0
	}
	return len(tp.recs)
}

// RecordStats reports the current record count and the number of times the
// record slice has grown since the tape was built — the record-storage
// analogue of Arena.Stats. A steady-state training loop must stop growing
// after its first step.
func (tp *Tape) RecordStats() (records, grows int) {
	if tp == nil {
		return 0, 0
	}
	return len(tp.recs), tp.recGrows
}

// OpHistogram counts the currently recorded ops by kind name — the
// record-tape profiling hook: called after a step's forward pass (and
// before the next Reset) it reports the op mix of the step's graph, which
// is how graph shape is inspected at paper scale without a debugger (see
// cmd/perfvec-bench -tape-histogram). Nil and inference tapes return an
// empty map. The map is freshly allocated; this is a profiling call, not a
// hot-path one.
func (tp *Tape) OpHistogram() map[string]int {
	h := map[string]int{}
	if tp == nil {
		return h
	}
	for i := range tp.recs {
		h[opNames[tp.recs[i].kind]]++
	}
	return h
}

// Reset clears the tape for reuse: records are dropped (their tensor refs
// zeroed, capacity retained) and all arena tensors handed out since the
// previous Reset are recycled. Records must not outlive Reset — they
// reference step-lifetime tensors.
func (tp *Tape) Reset() {
	clear(tp.recs)
	tp.recs = tp.recs[:0]
	if tp.arena != nil {
		tp.arena.Reset()
	}
}

// Backward seeds d(loss)/d(loss) = 1 and replays all recorded ops in
// reverse through the VJP table, accumulating gradients into every tensor
// that participated. loss must be a scalar (single-element) tensor produced
// on this tape.
func (tp *Tape) Backward(loss *Tensor) {
	if tp.infer {
		panic("tensor: Backward on an inference tape (nothing recorded)")
	}
	if len(loss.Data) != 1 {
		panic("tensor: Backward requires a scalar loss")
	}
	g := loss.ensureGrad()
	g[0] = 1
	for i := len(tp.recs) - 1; i >= 0; i-- {
		r := &tp.recs[i]
		vjpTable[r.kind](tp, r)
	}
}
