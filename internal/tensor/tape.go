package tensor

// Tape records the backward closures of differentiable operations in
// execution order so they can be replayed in reverse to compute gradients.
//
// A nil *Tape is valid everywhere an op takes one and means "inference mode":
// the op computes its result without recording anything.
//
// A Tape is not safe for concurrent use. Data-parallel training (see
// perfvec.Trainer) gives each gradient worker its own Tape over its own
// shadow parameter tensors — parameters share Data but not Grad — and reuses
// the tapes across steps via Reset, which retains the closure slice's
// capacity. Ops recorded on one tape may still parallelize internally: the
// kernels in matmul.go and the elementwise loops in ops.go split their own
// work across the worker pool in parallel.go.
type Tape struct {
	ops   []func()
	arena *Arena
}

// NewTape returns an empty tape. Op outputs are freshly allocated; use
// NewTapeArena for the pooled variant the training hot path runs on.
func NewTape() *Tape { return &Tape{} }

// NewTapeArena returns a tape backed by its own Arena: every op output,
// gradient buffer, and scratch tensor recorded through the tape is pooled,
// and Reset recycles them all. Tensors produced on such a tape are only valid
// until the next Reset (see Arena).
func NewTapeArena() *Tape { return &Tape{arena: NewArena()} }

// Arena returns the tape's arena, or nil for a plain tape.
func (tp *Tape) Arena() *Arena {
	if tp == nil {
		return nil
	}
	return tp.arena
}

// alloc returns a zeroed output tensor for an op running on this tape: pooled
// through the arena when the tape has one, freshly allocated otherwise (and
// always fresh in inference mode, tp == nil).
func (tp *Tape) alloc(shape ...int) *Tensor {
	if tp == nil || tp.arena == nil {
		return New(shape...)
	}
	return tp.arena.Get(shape...)
}

// Zeros returns a zeroed step-lifetime tensor allocated through tp's arena
// (or freshly when tp has none). Sequence models use it for initial hidden
// and cell states, and Dataset batching for input windows: buffers that are
// rebuilt every step and must not survive the tape's Reset.
func Zeros(tp *Tape, shape ...int) *Tensor { return tp.alloc(shape...) }

// record appends a backward closure; no-op on a nil tape.
func (tp *Tape) record(fn func()) {
	if tp != nil {
		tp.ops = append(tp.ops, fn)
	}
}

// Len returns the number of recorded operations.
func (tp *Tape) Len() int {
	if tp == nil {
		return 0
	}
	return len(tp.ops)
}

// Reset clears the tape for reuse, retaining the closure slice's capacity and
// recycling all arena tensors handed out since the previous Reset.
func (tp *Tape) Reset() {
	clear(tp.ops)
	tp.ops = tp.ops[:0]
	if tp.arena != nil {
		tp.arena.Reset()
	}
}

// Backward seeds d(loss)/d(loss) = 1 and runs all recorded closures in
// reverse, accumulating gradients into every tensor that participated.
// loss must be a scalar (single-element) tensor produced on this tape.
func (tp *Tape) Backward(loss *Tensor) {
	if len(loss.Data) != 1 {
		panic("tensor: Backward requires a scalar loss")
	}
	g := loss.ensureGrad()
	g[0] = 1
	for i := len(tp.ops) - 1; i >= 0; i-- {
		tp.ops[i]()
	}
}
