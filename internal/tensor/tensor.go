// Package tensor provides float32 tensors with reverse-mode automatic
// differentiation, the numeric substrate for PerfVec's neural models.
//
// Tensors are dense, row-major, and mostly two-dimensional ([rows, cols]).
// Differentiable operations take a *Tape; passing a nil Tape runs the same
// computation in inference mode without recording backward closures.
//
// Ops allocate their outputs through the tape: a plain tape (NewTape) and
// inference mode allocate fresh tensors, while an arena tape (NewTapeArena)
// draws them from a per-tape free-list pool that Tape.Reset recycles — the
// training loop's steady state allocates no tensors at all. Tensors from an
// arena tape are only valid until that tape's next Reset (see Arena).
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense row-major float32 tensor.
//
// Grad is allocated lazily the first time a gradient flows into the tensor
// during Tape.Backward.
type Tensor struct {
	Shape []int
	Data  []float32
	Grad  []float32

	// gradBuf is the pooled gradient buffer of an arena tensor: Arena.Reset
	// detaches Grad here so the next step's ensureGrad re-attaches it
	// (zeroed) instead of allocating, while keeping the "Grad == nil means
	// no gradient flowed" convention intact across recycles.
	gradBuf []float32
}

// badShape formats the panic message for an invalid shape. It deliberately
// takes a fresh copy of the shape (see callers): formatting the caller's
// variadic slice directly would make every shape slice escape to the heap,
// and the `shape ...int` arguments of New/Arena.Get are on the
// allocation-free hot path — they must stay stack-allocated.
func badShape(dim int, shape []int) string {
	return fmt.Sprintf("tensor: invalid dimension %d in shape %v", dim, shape)
}

// New returns a zero tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		if s <= 0 {
			panic(badShape(s, append([]int(nil), shape...)))
		}
		n *= s
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is not
// copied; it must have exactly the number of elements the shape implies.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		n *= s
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: shape %v needs %d elements, got %d", shape, n, len(data)))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// Randn fills a new tensor with N(0, std) samples from rng. A nil rng skips
// the sampling and returns a zero tensor of the right shape — the
// structure-only form used to build parameter shells (e.g. data-parallel
// replicas that alias the master's weights) without paying for a random
// initialization that is immediately discarded.
func Randn(rng *rand.Rand, std float64, shape ...int) *Tensor {
	t := New(shape...)
	if rng == nil {
		return t
	}
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64() * std)
	}
	return t
}

// XavierUniform returns a [fanOut, fanIn] weight matrix initialized with the
// Glorot/Xavier uniform scheme, the default for the models in this repo.
// A nil rng returns the zero structure-only shell (see Randn).
func XavierUniform(rng *rand.Rand, fanOut, fanIn int) *Tensor {
	t := New(fanOut, fanIn)
	if rng == nil {
		return t
	}
	limit := float32(math.Sqrt(6.0 / float64(fanIn+fanOut)))
	for i := range t.Data {
		t.Data[i] = (rng.Float32()*2 - 1) * limit
	}
	return t
}

// Len returns the number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Rows returns the first dimension of a matrix.
func (t *Tensor) Rows() int { return t.Shape[0] }

// Cols returns the second dimension of a matrix; 1 for vectors.
func (t *Tensor) Cols() int {
	if len(t.Shape) < 2 {
		return 1
	}
	return t.Shape[1]
}

// At returns the element at row i, column j of a matrix.
func (t *Tensor) At(i, j int) float32 { return t.Data[i*t.Cols()+j] }

// Set stores v at row i, column j of a matrix.
func (t *Tensor) Set(i, j int, v float32) { t.Data[i*t.Cols()+j] = v }

// Row returns a view (no copy) of row i of a matrix.
func (t *Tensor) Row(i int) []float32 {
	c := t.Cols()
	return t.Data[i*c : (i+1)*c]
}

// Clone returns a deep copy of the tensor (data only, not grad).
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a view of the same data with a new shape.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		n *= s
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v to %v", t.Shape, shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: t.Data, Grad: t.Grad}
}

// ZeroGrad clears the gradient buffer if allocated.
func (t *Tensor) ZeroGrad() {
	for i := range t.Grad {
		t.Grad[i] = 0
	}
}

// ensureGrad attaches the gradient buffer on first use, reusing the pooled
// buffer of a recycled arena tensor when one is available.
func (t *Tensor) ensureGrad() []float32 {
	if t.Grad == nil {
		if t.gradBuf != nil && len(t.gradBuf) == len(t.Data) {
			clear(t.gradBuf)
			t.Grad = t.gradBuf
		} else {
			t.Grad = make([]float32, len(t.Data))
		}
	}
	return t.Grad
}

// EnsureGrad returns the tensor's gradient buffer, attaching a zeroed one if
// none has been allocated yet. Exported for the trainer's gradient reduction.
func (t *Tensor) EnsureGrad() []float32 { return t.ensureGrad() }

// SameShape reports whether two tensors have identical shapes.
func SameShape(a, b *Tensor) bool {
	if len(a.Shape) != len(b.Shape) {
		return false
	}
	for i := range a.Shape {
		if a.Shape[i] != b.Shape[i] {
			return false
		}
	}
	return true
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor%v", t.Shape)
}
