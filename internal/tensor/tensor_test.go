package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewShapes(t *testing.T) {
	a := New(3, 4)
	if a.Rows() != 3 || a.Cols() != 4 || a.Len() != 12 {
		t.Fatalf("got rows=%d cols=%d len=%d", a.Rows(), a.Cols(), a.Len())
	}
	v := New(5)
	if v.Cols() != 1 {
		t.Fatalf("vector Cols = %d, want 1", v.Cols())
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero dimension")
		}
	}()
	New(3, 0)
}

func TestFromSlice(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	if a.At(1, 2) != 6 {
		t.Fatalf("At(1,2) = %v, want 6", a.At(1, 2))
	}
	a.Set(0, 1, 9)
	if a.Data[1] != 9 {
		t.Fatalf("Set did not write underlying data")
	}
}

func TestFromSlicePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong element count")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestCloneIndependence(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 1, 2)
	b := a.Clone()
	b.Data[0] = 99
	if a.Data[0] != 1 {
		t.Fatal("Clone shares data with original")
	}
}

func TestReshapeSharesData(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := a.Reshape(4)
	b.Data[3] = 7
	if a.At(1, 1) != 7 {
		t.Fatal("Reshape must alias the underlying data")
	}
}

func TestRowView(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	r := a.Row(1)
	if len(r) != 3 || r[0] != 4 {
		t.Fatalf("Row(1) = %v", r)
	}
	r[2] = 10
	if a.At(1, 2) != 10 {
		t.Fatal("Row must be a view")
	}
}

func TestMatMulKnownValues(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(nil, a, b)
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("MatMul[%d] = %v, want %v", i, c.Data[i], w)
		}
	}
}

func TestMatMulBTMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := Randn(rng, 1, 4, 5)
	b := Randn(rng, 1, 3, 5)
	got := MatMulBT(nil, a, b)
	want := MatMul(nil, a, Transpose(nil, b))
	for i := range got.Data {
		if math.Abs(float64(got.Data[i]-want.Data[i])) > 1e-5 {
			t.Fatalf("MatMulBT[%d] = %v, want %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestBackwardRequiresScalar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-scalar loss")
		}
	}()
	tp := NewTape()
	tp.Backward(New(2, 2))
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := Randn(rng, 3, 4, 6)
	s := SoftmaxRows(nil, a)
	for i := 0; i < 4; i++ {
		var sum float64
		for _, v := range s.Row(i) {
			if v < 0 {
				t.Fatal("softmax produced negative value")
			}
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
}

func TestConcatSliceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := Randn(rng, 1, 3, 4)
	b := Randn(rng, 1, 3, 2)
	c := ConcatCols(nil, a, b)
	a2 := SliceCols(nil, c, 0, 4)
	b2 := SliceCols(nil, c, 4, 6)
	for i := range a.Data {
		if a.Data[i] != a2.Data[i] {
			t.Fatal("ConcatCols/SliceCols did not round-trip a")
		}
	}
	for i := range b.Data {
		if b.Data[i] != b2.Data[i] {
			t.Fatal("ConcatCols/SliceCols did not round-trip b")
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(6)
		n := 1 + rng.Intn(6)
		a := Randn(rng, 1, m, n)
		b := Transpose(nil, Transpose(nil, a))
		for i := range a.Data {
			if a.Data[i] != b.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSumMatchesManual(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	s := Sum(nil, a)
	if s.Data[0] != 10 {
		t.Fatalf("Sum = %v, want 10", s.Data[0])
	}
	m := Mean(nil, a)
	if m.Data[0] != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", m.Data[0])
	}
}

func TestLayerNormRowStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := Randn(rng, 3, 5, 8)
	gamma := New(8)
	gamma.Fill(1)
	beta := New(8)
	out := LayerNorm(nil, x, gamma, beta, 1e-5)
	for i := 0; i < 5; i++ {
		var mean, varc float64
		for _, v := range out.Row(i) {
			mean += float64(v)
		}
		mean /= 8
		for _, v := range out.Row(i) {
			d := float64(v) - mean
			varc += d * d
		}
		varc /= 8
		if math.Abs(mean) > 1e-4 || math.Abs(varc-1) > 1e-2 {
			t.Fatalf("row %d: mean=%v var=%v", i, mean, varc)
		}
	}
}

// matmulRef is a naive reference implementation used to cross-check the
// parallel GEMM kernels.
func matmulRef(a, b *Tensor) *Tensor {
	m, k, n := a.Rows(), a.Cols(), b.Cols()
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for l := 0; l < k; l++ {
				s += float64(a.At(i, l)) * float64(b.At(l, j))
			}
			out.Set(i, j, float32(s))
		}
	}
	return out
}

func TestMatMulMatchesReferenceLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := Randn(rng, 1, 67, 33)
	b := Randn(rng, 1, 33, 41)
	got := MatMul(nil, a, b)
	want := matmulRef(a, b)
	for i := range got.Data {
		if math.Abs(float64(got.Data[i]-want.Data[i])) > 1e-3 {
			t.Fatalf("MatMul[%d] = %v, want %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestParallelCoversRange(t *testing.T) {
	seen := make([]int32, 1000)
	Parallel(1000, func(start, end int) {
		for i := start; i < end; i++ {
			seen[i]++
		}
	})
	for i, v := range seen {
		if v != 1 {
			t.Fatalf("index %d visited %d times", i, v)
		}
	}
}

func TestParallelSmallN(t *testing.T) {
	count := 0
	Parallel(1, func(start, end int) { count += end - start })
	if count != 1 {
		t.Fatalf("Parallel(1) covered %d items", count)
	}
}
