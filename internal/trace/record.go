// Package trace defines the dynamic instruction-execution trace records that
// flow from the functional emulator to the timing simulator and the feature
// extractor, plus the dataset types used to train PerfVec models.
//
// A trace plays the role of the gem5 instruction trace in the paper: it is
// microarchitecture-independent (same program + input => same trace), and it
// carries everything Table I's features and the timing models need.
package trace

import "repro/internal/isa"

// InstBytes is the size of one instruction in the synthetic ISA's address
// space; PCs are static indices scaled by this.
const InstBytes = 4

// Record is one dynamically executed instruction.
type Record struct {
	PC     uint64 // instruction byte address (StaticIdx * InstBytes)
	Addr   uint64 // data byte address for memory ops
	Target uint64 // branch target byte address (taken or fall-through)
	Static int32  // static instruction index
	Op     isa.Op
	Sub    isa.SubOp
	NumSrc uint8
	NumDst uint8
	Src    [isa.MaxSrcRegs]isa.Reg
	Dst    [isa.MaxDstRegs]isa.Reg
	MemLen uint8 // access width in bytes, 0 for non-memory ops
	Taken  bool  // branch outcome (true for unconditional taken branches)
	Fault  bool  // execution fault, e.g. divide by zero
}

// IsMem reports whether the record accesses data memory.
func (r *Record) IsMem() bool { return r.Op.IsMem() }

// IsLoad reports whether the record reads data memory.
func (r *Record) IsLoad() bool { return r.Op.IsLoad() }

// IsStore reports whether the record writes data memory.
func (r *Record) IsStore() bool { return r.Op.IsStore() }

// IsBranch reports whether the record redirects control flow.
func (r *Record) IsBranch() bool { return r.Op.IsBranch() }

// IsCondBranch reports whether the record is a conditional branch.
func (r *Record) IsCondBranch() bool { return r.Op == isa.BranchCond }

// IsDirectBranch reports whether the branch target is encoded statically.
func (r *Record) IsDirectBranch() bool {
	return r.Op == isa.BranchCond || r.Op == isa.BranchDir || r.Op == isa.Call
}
