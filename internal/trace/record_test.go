package trace

import (
	"testing"

	"repro/internal/isa"
)

func TestRecordPredicatesDelegate(t *testing.T) {
	r := Record{Op: isa.VecLoad}
	if !r.IsMem() || !r.IsLoad() || r.IsStore() || r.IsBranch() {
		t.Fatal("vector load predicates wrong")
	}
	b := Record{Op: isa.BranchCond}
	if !b.IsBranch() || !b.IsCondBranch() || !b.IsDirectBranch() {
		t.Fatal("conditional branch predicates wrong")
	}
	ind := Record{Op: isa.BranchInd}
	if !ind.IsBranch() || ind.IsCondBranch() || ind.IsDirectBranch() {
		t.Fatal("indirect branch predicates wrong")
	}
	call := Record{Op: isa.Call}
	if !call.IsDirectBranch() {
		t.Fatal("call must be a direct branch")
	}
	ret := Record{Op: isa.Ret}
	if ret.IsDirectBranch() || !ret.IsBranch() {
		t.Fatal("ret must be an indirect branch")
	}
}

func TestInstBytesScalesPCs(t *testing.T) {
	// The address-space convention: static index i lives at i*InstBytes.
	r := Record{Static: 7, PC: 7 * InstBytes}
	if r.PC/InstBytes != uint64(r.Static) {
		t.Fatal("PC/static index relation broken")
	}
}
