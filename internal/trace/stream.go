package trace

// Stream is a pull-based reader over a dynamic instruction trace. It is the
// streaming counterpart of []Record: consumers that only need each record
// once (featurization, timing simulation) can run in memory bounded by their
// own working set instead of the trace length.
//
// Next stores the next record in rec and reports whether one was produced.
// A (false, nil) return means the stream ended cleanly; a non-nil error ends
// the stream and is sticky. The record is fully overwritten on every call,
// so rec can be reused across calls.
type Stream interface {
	Next(rec *Record) (bool, error)
}

// SliceStream adapts a materialized trace to a Stream, for code that accepts
// only the streaming interface.
type SliceStream struct {
	recs []Record
	i    int
}

// NewSliceStream returns a Stream that replays recs in order.
func NewSliceStream(recs []Record) *SliceStream {
	return &SliceStream{recs: recs}
}

// Next implements Stream.
func (s *SliceStream) Next(rec *Record) (bool, error) {
	if s.i >= len(s.recs) {
		return false, nil
	}
	*rec = s.recs[s.i]
	s.i++
	return true, nil
}
