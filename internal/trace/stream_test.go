package trace

import "testing"

func TestSliceStream(t *testing.T) {
	recs := []Record{{PC: 0}, {PC: 4}, {PC: 8}}
	s := NewSliceStream(recs)
	var rec Record
	for i := range recs {
		ok, err := s.Next(&rec)
		if err != nil || !ok {
			t.Fatalf("Next %d = (%v, %v), want (true, nil)", i, ok, err)
		}
		if rec != recs[i] {
			t.Fatalf("record %d = %+v, want %+v", i, rec, recs[i])
		}
	}
	for range 2 { // exhausted streams stay exhausted
		if ok, err := s.Next(&rec); ok || err != nil {
			t.Fatalf("exhausted Next = (%v, %v), want (false, nil)", ok, err)
		}
	}
}

func TestSliceStreamEmpty(t *testing.T) {
	var rec Record
	if ok, err := NewSliceStream(nil).Next(&rec); ok || err != nil {
		t.Fatalf("empty Next = (%v, %v), want (false, nil)", ok, err)
	}
}
