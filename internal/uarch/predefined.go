package uarch

// Predefined returns the seven fixed configurations that mirror the paper's
// "seven predefined configurations in gem5 (four out-of-order and three
// in-order)". They span a little in-order core (A7-like, also the core model
// used by the paper's §VI case studies) up to a wide server-class OoO core.
func Predefined() []*Config {
	return []*Config{
		A7Like(),
		inorderMid(),
		inorderFast(),
		oooLittle(),
		oooMid(),
		oooBig(),
		oooServer(),
	}
}

// A7Like models a small dual-issue in-order core in the spirit of the ARM
// Cortex-A7 configuration the paper uses for its DSE and loop-tiling studies.
func A7Like() *Config {
	return &Config{
		Name: "a7like", Core: InOrder, FreqMHz: 1400,
		FetchWidth: 2, FrontendDepth: 4,
		Predictor: PredBimodal, PredTableBits: 9, BTBBits: 8, RASEntries: 8,
		IssueWidth: 2, CommitWidth: 2, ROBSize: 8, LQSize: 8, SQSize: 8,
		IntALU:  FU{Count: 2, Latency: 1, Pipelined: true},
		IntMul:  FU{Count: 1, Latency: 4, Pipelined: true},
		IntDiv:  FU{Count: 1, Latency: 12},
		FPALU:   FU{Count: 1, Latency: 4, Pipelined: true},
		FPMul:   FU{Count: 1, Latency: 5, Pipelined: true},
		FPDiv:   FU{Count: 1, Latency: 16},
		VecUnit: FU{Count: 1, Latency: 5, Pipelined: true},
		MemPort: FU{Count: 1, Latency: 1, Pipelined: true},
		L1I:     Cache{SizeKB: 32, Assoc: 2, LineBytes: 64, Latency: 1},
		L1D:     Cache{SizeKB: 32, Assoc: 4, LineBytes: 64, Latency: 2},
		L2:      Cache{SizeKB: 512, Assoc: 8, LineBytes: 64, Latency: 12},
		DRAM:    DDR4, DRAMLatencyNs: 80, DRAMBandwidthGB: 12.8,
	}
}

func inorderMid() *Config {
	c := A7Like()
	c.Name = "inorder-mid"
	c.FreqMHz = 2000
	c.L1D.SizeKB = 64
	c.L2.SizeKB = 1024
	c.Predictor = PredGShare
	c.PredTableBits = 12
	return c
}

func inorderFast() *Config {
	c := A7Like()
	c.Name = "inorder-fast"
	c.FreqMHz = 2600
	c.FetchWidth = 3
	c.IssueWidth = 3
	c.CommitWidth = 3
	c.IntALU.Count = 3
	c.L1I.SizeKB = 64
	c.L1D.SizeKB = 64
	c.L2.SizeKB = 2048
	c.Predictor = PredTournament
	c.PredTableBits = 12
	c.DRAM = LPDDR5
	c.DRAMLatencyNs = 70
	c.DRAMBandwidthGB = 25.6
	return c
}

func oooLittle() *Config {
	return &Config{
		Name: "ooo-little", Core: OutOfOrder, FreqMHz: 1800,
		FetchWidth: 2, FrontendDepth: 6,
		Predictor: PredBimodal, PredTableBits: 10, BTBBits: 9, RASEntries: 8,
		IssueWidth: 2, CommitWidth: 2, ROBSize: 40, LQSize: 16, SQSize: 16,
		IntALU:  FU{Count: 2, Latency: 1, Pipelined: true},
		IntMul:  FU{Count: 1, Latency: 3, Pipelined: true},
		IntDiv:  FU{Count: 1, Latency: 12},
		FPALU:   FU{Count: 1, Latency: 3, Pipelined: true},
		FPMul:   FU{Count: 1, Latency: 4, Pipelined: true},
		FPDiv:   FU{Count: 1, Latency: 14},
		VecUnit: FU{Count: 1, Latency: 4, Pipelined: true},
		MemPort: FU{Count: 1, Latency: 1, Pipelined: true},
		L1I:     Cache{SizeKB: 32, Assoc: 4, LineBytes: 64, Latency: 1},
		L1D:     Cache{SizeKB: 32, Assoc: 4, LineBytes: 64, Latency: 2},
		L2:      Cache{SizeKB: 1024, Assoc: 8, LineBytes: 64, Latency: 14},
		DRAM:    DDR4, DRAMLatencyNs: 75, DRAMBandwidthGB: 19.2,
	}
}

func oooMid() *Config {
	c := oooLittle()
	c.Name = "ooo-mid"
	c.Prefetcher = PrefetchNextLine
	c.FreqMHz = 2500
	c.FetchWidth = 4
	c.IssueWidth = 4
	c.CommitWidth = 4
	c.ROBSize = 96
	c.LQSize = 32
	c.SQSize = 32
	c.IntALU.Count = 3
	c.FPALU.Count = 2
	c.MemPort.Count = 2
	c.Predictor = PredGShare
	c.PredTableBits = 13
	c.L2.SizeKB = 2048
	return c
}

func oooBig() *Config {
	c := oooMid()
	c.Name = "ooo-big"
	c.Prefetcher = PrefetchStride
	c.FreqMHz = 3200
	c.FetchWidth = 6
	c.IssueWidth = 6
	c.CommitWidth = 6
	c.ROBSize = 192
	c.LQSize = 64
	c.SQSize = 64
	c.IntALU.Count = 4
	c.IntMul.Count = 2
	c.FPALU.Count = 2
	c.FPMul.Count = 2
	c.VecUnit.Count = 2
	c.MemPort.Count = 2
	c.Predictor = PredTournament
	c.PredTableBits = 14
	c.BTBBits = 12
	c.RASEntries = 16
	c.L1I.SizeKB = 64
	c.L1D.SizeKB = 64
	c.L2.SizeKB = 4096
	c.DRAM = LPDDR5
	c.DRAMLatencyNs = 65
	c.DRAMBandwidthGB = 51.2
	return c
}

func oooServer() *Config {
	c := oooBig()
	c.Name = "ooo-server"
	c.FreqMHz = 3600
	c.FetchWidth = 8
	c.IssueWidth = 8
	c.CommitWidth = 8
	c.ROBSize = 320
	c.LQSize = 96
	c.SQSize = 96
	c.IntALU.Count = 6
	c.MemPort.Count = 3
	c.L2.SizeKB = 8192
	c.DRAM = HBM
	c.DRAMLatencyNs = 95
	c.DRAMBandwidthGB = 256
	return c
}
