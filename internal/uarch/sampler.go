package uarch

import (
	"fmt"
	"math/rand"
)

// Sampler draws random valid microarchitecture configurations, the role of
// the paper's tool that "randomly samples valid gem5 configurations" across
// processor, cache, and memory knobs (§IV-C).
type Sampler struct {
	rng *rand.Rand
}

// NewSampler returns a sampler seeded deterministically.
func NewSampler(seed int64) *Sampler {
	return &Sampler{rng: rand.New(rand.NewSource(seed))}
}

func (s *Sampler) choiceInt(vals ...int) int { return vals[s.rng.Intn(len(vals))] }
func (s *Sampler) between(lo, hi int) int    { return lo + s.rng.Intn(hi-lo+1) }

// Sample draws one random configuration of the requested core kind.
func (s *Sampler) Sample(kind CoreKind) *Config {
	c := &Config{Core: kind}
	c.FreqMHz = s.choiceInt(1000, 1400, 1800, 2200, 2600, 3000, 3400, 3800)

	switch kind {
	case InOrder:
		c.FetchWidth = s.choiceInt(1, 2, 2, 3)
		c.IssueWidth = c.FetchWidth
		c.CommitWidth = c.FetchWidth
		c.FrontendDepth = s.between(3, 6)
		c.ROBSize = 8
		c.LQSize, c.SQSize = 8, 8
	case OutOfOrder:
		c.FetchWidth = s.choiceInt(2, 4, 4, 6, 8)
		c.IssueWidth = c.FetchWidth
		c.CommitWidth = c.FetchWidth
		c.FrontendDepth = s.between(5, 14)
		c.ROBSize = s.choiceInt(32, 64, 96, 128, 192, 256, 320)
		c.LQSize = c.ROBSize / 4
		c.SQSize = c.ROBSize / 4
	}

	c.Predictor = PredictorKind(s.rng.Intn(NumPredictorKinds))
	c.PredTableBits = s.between(8, 14)
	c.BTBBits = s.between(8, 12)
	c.RASEntries = s.choiceInt(4, 8, 16)

	alu := s.choiceInt(1, 2, 2, 3, 4)
	if alu > c.IssueWidth {
		alu = c.IssueWidth
	}
	c.IntALU = FU{Count: alu, Latency: 1, Pipelined: true}
	c.IntMul = FU{Count: s.choiceInt(1, 1, 2), Latency: s.between(3, 5), Pipelined: true}
	c.IntDiv = FU{Count: 1, Latency: s.between(8, 20)}
	c.FPALU = FU{Count: s.choiceInt(1, 1, 2), Latency: s.between(2, 5), Pipelined: true}
	c.FPMul = FU{Count: s.choiceInt(1, 1, 2), Latency: s.between(3, 6), Pipelined: true}
	c.FPDiv = FU{Count: 1, Latency: s.between(10, 24)}
	c.VecUnit = FU{Count: s.choiceInt(1, 1, 2), Latency: s.between(3, 6), Pipelined: true}
	c.MemPort = FU{Count: s.choiceInt(1, 1, 2, 2, 3), Latency: 1, Pipelined: true}

	line := s.choiceInt(32, 64, 64, 128)
	c.L1I = Cache{
		SizeKB: s.choiceInt(16, 32, 32, 64), Assoc: s.choiceInt(2, 2, 4),
		LineBytes: line, Latency: s.between(1, 2),
	}
	c.L1D = Cache{
		SizeKB: s.choiceInt(8, 16, 32, 32, 64, 128), Assoc: s.choiceInt(2, 4, 4, 8),
		LineBytes: line, Latency: s.between(1, 4),
	}
	c.L2 = Cache{
		SizeKB: s.choiceInt(256, 512, 1024, 2048, 4096, 8192), Assoc: s.choiceInt(4, 8, 8, 16),
		LineBytes: line, Latency: s.between(8, 24),
	}
	c.L2Exclusive = s.rng.Intn(4) == 0
	c.Prefetcher = PrefetchKind(s.rng.Intn(NumPrefetchKinds))

	c.DRAM = DRAMKind(s.rng.Intn(NumDRAMKinds))
	switch c.DRAM {
	case DDR4:
		c.DRAMLatencyNs = float64(s.between(70, 95))
		c.DRAMBandwidthGB = float64(s.choiceInt(13, 19, 26))
	case LPDDR5:
		c.DRAMLatencyNs = float64(s.between(60, 85))
		c.DRAMBandwidthGB = float64(s.choiceInt(26, 34, 51))
	case GDDR5:
		c.DRAMLatencyNs = float64(s.between(80, 110))
		c.DRAMBandwidthGB = float64(s.choiceInt(112, 160, 224))
	case HBM:
		c.DRAMLatencyNs = float64(s.between(90, 120))
		c.DRAMBandwidthGB = float64(s.choiceInt(128, 256, 410))
	}

	c.Name = fmt.Sprintf("%s-%dMHz-rob%d-l1d%dk-l2%dk-%s",
		c.Core, c.FreqMHz, c.ROBSize, c.L1D.SizeKB, c.L2.SizeKB, c.DRAM)
	if err := c.Validate(); err != nil {
		panic(fmt.Sprintf("uarch: sampler produced invalid config: %v", err))
	}
	return c
}

// SampleSet draws the paper's training mixture: mostly out-of-order cores
// with a smaller share of in-order ones ("60 out-of-order and 10 in-order"),
// at the requested total count with the same 6:1 ratio.
func (s *Sampler) SampleSet(total int) []*Config {
	inorder := total / 7
	if inorder < 1 && total > 1 {
		inorder = 1
	}
	cfgs := make([]*Config, 0, total)
	for i := 0; i < total-inorder; i++ {
		cfgs = append(cfgs, s.Sample(OutOfOrder))
	}
	for i := 0; i < inorder; i++ {
		cfgs = append(cfgs, s.Sample(InOrder))
	}
	for i, c := range cfgs {
		c.Name = fmt.Sprintf("sample%02d-%s", i, c.Name)
	}
	return cfgs
}

// TrainingSet mirrors the paper's dataset construction: sampled
// configurations plus the seven predefined ones.
func TrainingSet(seed int64, sampled int) []*Config {
	cfgs := NewSampler(seed).SampleSet(sampled)
	return append(cfgs, Predefined()...)
}
