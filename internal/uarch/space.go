package uarch

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Seeded design-space generation for fleet-scale DSE. Where Sampler draws a
// few dozen training microarchitectures, GenerateSpace builds candidate
// spaces of thousands of configurations for batched sweeps: a full grid over
// the primary cache/branch/width axes, replicated with stratified-random
// secondary knobs from a seeded PCG, with exact-duplicate configurations
// deduplicated. The same SpaceSpec always yields the same space, on any
// process — the property that lets a sweep service cache the embedded
// candidate matrix by spec.

// Grid axes: the primary design dimensions every generated space covers
// exhaustively before any random replication. Their cross product with the
// predictor kinds defines GridCells.
var (
	// GridL1DKB are the L1 data cache sizes of the cache axis.
	GridL1DKB = []int{8, 16, 32, 64, 128}
	// GridL2KB are the L2 sizes of the cache axis.
	GridL2KB = []int{256, 512, 1024, 2048, 4096, 8192}
	// GridFetch are the fetch/issue/commit widths of the width axis.
	GridFetch = []int{2, 4, 6, 8}
)

// GridCells is the number of distinct grid points: every combination of L1D
// size, L2 size, fetch width, and branch predictor kind.
func GridCells() int {
	return len(GridL1DKB) * len(GridL2KB) * len(GridFetch) * NumPredictorKinds
}

// SpaceSpec identifies a generated design space. Equal specs generate equal
// spaces (bitwise, in order), so a spec is a complete cache key for anything
// derived from the space — candidate feature matrices included.
type SpaceSpec struct {
	// Size is the requested number of configurations. The result may be
	// smaller when deduplication exhausts the distinct configurations the
	// spec can express (GridOnly spaces cap at GridCells).
	Size int
	// Seed seeds the PCG driving the stratified-random secondary knobs.
	Seed uint64
	// GridOnly restricts generation to pure grid points: secondary knobs
	// stay at their base values, so replicas beyond the grid collide exactly
	// and are dropped by dedup. Mostly a test mode for the dedup contract.
	GridOnly bool
}

// GenerateSpace builds the design space spec describes: grid points first
// (round-robin over GridCells, so any prefix of the space is spread across
// the grid), then stratified-random replicas — the same grid cell with
// secondary knobs (frequency, depths, queue sizes, functional units, cache
// geometry details, DRAM) drawn from the seeded PCG. Exact duplicates (equal
// parameter vectors) are dropped. Every returned configuration is valid and
// the result is deterministic per spec.
func GenerateSpace(spec SpaceSpec) []*Config {
	if spec.Size < 1 {
		return nil
	}
	rng := rand.New(rand.NewPCG(spec.Seed, spec.Seed^0x9E3779B97F4A7C15))
	cells := GridCells()
	out := make([]*Config, 0, spec.Size)
	seen := make(map[[NumParams]uint32]bool, spec.Size)
	var key [NumParams]uint32
	params := make([]float32, NumParams)

	// Collision headroom: random replicas almost never collide, so the cap
	// only matters for GridOnly spaces, where it bounds the scan past the
	// grid's distinct-config supply.
	maxAttempts := 2*spec.Size + cells
	for i := 0; len(out) < spec.Size && i < maxAttempts; i++ {
		cell, replica := i%cells, i/cells
		c := gridPoint(cell)
		if replica > 0 && !spec.GridOnly {
			jitterSecondary(rng, c)
		}
		if err := c.Validate(); err != nil {
			panic(fmt.Sprintf("uarch: generator produced invalid config: %v", err))
		}
		c.ParamsInto(params)
		for j, v := range params {
			key[j] = math.Float32bits(v)
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		c.Name = fmt.Sprintf("gen%05d-%s", len(out), c.Name)
		out = append(out, c)
	}
	return out
}

// gridPoint decodes cell into its grid coordinates and returns the base
// out-of-order configuration at that point, secondary knobs at their fixed
// base values.
func gridPoint(cell int) *Config {
	l1 := GridL1DKB[cell%len(GridL1DKB)]
	cell /= len(GridL1DKB)
	l2 := GridL2KB[cell%len(GridL2KB)]
	cell /= len(GridL2KB)
	fw := GridFetch[cell%len(GridFetch)]
	cell /= len(GridFetch)
	pred := PredictorKind(cell)

	c := &Config{
		Core: OutOfOrder, FreqMHz: 2600,
		FetchWidth: fw, FrontendDepth: 8,
		Predictor: pred, PredTableBits: 12, BTBBits: 10, RASEntries: 8,
		IssueWidth: fw, CommitWidth: fw,
		ROBSize: 128, LQSize: 32, SQSize: 32,
		IntALU:  FU{Count: min(fw, 4), Latency: 1, Pipelined: true},
		IntMul:  FU{Count: 1, Latency: 3, Pipelined: true},
		IntDiv:  FU{Count: 1, Latency: 12},
		FPALU:   FU{Count: 1, Latency: 3, Pipelined: true},
		FPMul:   FU{Count: 1, Latency: 4, Pipelined: true},
		FPDiv:   FU{Count: 1, Latency: 14},
		VecUnit: FU{Count: 1, Latency: 4, Pipelined: true},
		MemPort: FU{Count: 2, Latency: 1, Pipelined: true},
		L1I:     Cache{SizeKB: 32, Assoc: 4, LineBytes: 64, Latency: 1},
		L1D:     Cache{SizeKB: l1, Assoc: 4, LineBytes: 64, Latency: 2},
		L2:      Cache{SizeKB: l2, Assoc: 8, LineBytes: 64, Latency: 14},
		DRAM:    DDR4, DRAMLatencyNs: 85, DRAMBandwidthGB: 25.6,
	}
	c.Name = fmt.Sprintf("fw%d-%s-l1d%dk-l2%dk", fw, pred, l1, l2)
	return c
}

// jitterSecondary randomizes the secondary knobs of a grid point in place,
// leaving the primary axes (L1D/L2 size, width, predictor) untouched so the
// replica stays in its stratum. All draws keep Validate satisfied.
func jitterSecondary(rng *rand.Rand, c *Config) {
	pickInt := func(vals ...int) int { return vals[rng.IntN(len(vals))] }
	between := func(lo, hi int) int { return lo + rng.IntN(hi-lo+1) }

	c.FreqMHz = pickInt(1400, 1800, 2200, 2600, 3000, 3400)
	c.FrontendDepth = between(5, 14)
	c.ROBSize = pickInt(64, 96, 128, 192, 256)
	c.LQSize = c.ROBSize / 4
	c.SQSize = c.ROBSize / 4
	c.PredTableBits = between(8, 14)
	c.BTBBits = between(8, 12)
	c.RASEntries = pickInt(4, 8, 16)

	c.IntALU.Count = min(pickInt(2, 3, 4), c.IssueWidth)
	c.IntMul = FU{Count: pickInt(1, 2), Latency: between(3, 5), Pipelined: true}
	c.IntDiv.Latency = between(8, 20)
	c.FPALU = FU{Count: pickInt(1, 2), Latency: between(2, 5), Pipelined: true}
	c.FPMul = FU{Count: pickInt(1, 2), Latency: between(3, 6), Pipelined: true}
	c.FPDiv.Latency = between(10, 24)
	c.VecUnit.Latency = between(3, 6)
	c.MemPort.Count = pickInt(1, 2, 3)

	c.L1I.SizeKB = pickInt(16, 32, 64)
	c.L1I.Latency = between(1, 2)
	c.L1D.Assoc = pickInt(2, 4, 8)
	c.L1D.Latency = between(1, 4)
	c.L2.Assoc = pickInt(4, 8, 16)
	c.L2.Latency = between(8, 24)
	c.L2Exclusive = rng.IntN(4) == 0
	c.Prefetcher = PrefetchKind(rng.IntN(NumPrefetchKinds))

	c.DRAM = DRAMKind(rng.IntN(NumDRAMKinds))
	switch c.DRAM {
	case DDR4:
		c.DRAMLatencyNs = float64(between(70, 95))
		c.DRAMBandwidthGB = float64(pickInt(13, 19, 26))
	case LPDDR5:
		c.DRAMLatencyNs = float64(between(60, 85))
		c.DRAMBandwidthGB = float64(pickInt(26, 34, 51))
	case GDDR5:
		c.DRAMLatencyNs = float64(between(80, 110))
		c.DRAMBandwidthGB = float64(pickInt(112, 160, 224))
	case HBM:
		c.DRAMLatencyNs = float64(between(90, 120))
		c.DRAMBandwidthGB = float64(pickInt(128, 256, 410))
	}
}
