package uarch

import (
	"math"
	"testing"
)

// paramsKey collapses a config to the dedup identity GenerateSpace uses: the
// raw bit pattern of its parameter vector.
func paramsKey(c *Config) [NumParams]uint32 {
	var k [NumParams]uint32
	for i, v := range c.Params() {
		k[i] = math.Float32bits(v)
	}
	return k
}

// TestGenerateSpaceDeterministic is the seed contract: the same spec must
// reproduce the identical space — same length, same names, same parameter
// bits, in the same order — while a different seed must diverge somewhere in
// the randomized replicas.
func TestGenerateSpaceDeterministic(t *testing.T) {
	spec := SpaceSpec{Size: 1500, Seed: 99}
	a := GenerateSpace(spec)
	b := GenerateSpace(spec)
	if len(a) != spec.Size || len(b) != spec.Size {
		t.Fatalf("sizes %d/%d, want %d", len(a), len(b), spec.Size)
	}
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Fatalf("config %d name differs across runs: %q vs %q", i, a[i].Name, b[i].Name)
		}
		if paramsKey(a[i]) != paramsKey(b[i]) {
			t.Fatalf("config %d (%s) params differ across identically seeded runs", i, a[i].Name)
		}
	}

	c := GenerateSpace(SpaceSpec{Size: spec.Size, Seed: 100})
	diverged := false
	for i := range c {
		if paramsKey(a[i]) != paramsKey(c[i]) {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("different seeds produced the identical space")
	}
}

// TestGenerateSpaceValidAndUnique checks the generator's structural promises
// on a large mixed space: every config valid, no duplicate parameter
// vectors, the primary grid axes fully covered, and the requested size met.
func TestGenerateSpaceValidAndUnique(t *testing.T) {
	space := GenerateSpace(SpaceSpec{Size: 2000, Seed: 3})
	if len(space) != 2000 {
		t.Fatalf("size = %d, want 2000", len(space))
	}
	seen := make(map[[NumParams]uint32]bool, len(space))
	l1, l2, fw, pred := map[int]bool{}, map[int]bool{}, map[int]bool{}, map[PredictorKind]bool{}
	for _, c := range space {
		if err := c.Validate(); err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		k := paramsKey(c)
		if seen[k] {
			t.Fatalf("duplicate config survived dedup: %s", c.Name)
		}
		seen[k] = true
		l1[c.L1D.SizeKB] = true
		l2[c.L2.SizeKB] = true
		fw[c.FetchWidth] = true
		pred[c.Predictor] = true
	}
	if len(l1) != len(GridL1DKB) || len(l2) != len(GridL2KB) ||
		len(fw) != len(GridFetch) || len(pred) != NumPredictorKinds {
		t.Fatalf("grid axes not fully covered: l1=%d/%d l2=%d/%d fw=%d/%d pred=%d/%d",
			len(l1), len(GridL1DKB), len(l2), len(GridL2KB), len(fw), len(GridFetch), len(pred), NumPredictorKinds)
	}
}

// TestGenerateSpaceDedupCollidingGrid is the dedup regression: a GridOnly
// spec larger than the grid replays the same grid points verbatim, so every
// replica is an exact duplicate and the space must truncate at GridCells
// unique configurations.
func TestGenerateSpaceDedupCollidingGrid(t *testing.T) {
	cells := GridCells()
	space := GenerateSpace(SpaceSpec{Size: cells + 123, Seed: 5, GridOnly: true})
	if len(space) != cells {
		t.Fatalf("colliding grid yielded %d configs, want the %d unique grid points", len(space), cells)
	}
	seen := make(map[[NumParams]uint32]bool, len(space))
	for _, c := range space {
		k := paramsKey(c)
		if seen[k] {
			t.Fatalf("duplicate grid point survived dedup: %s", c.Name)
		}
		seen[k] = true
	}
}

// TestFeaturesMatchesParams pins the packed-row fill against the allocating
// Params path, bitwise, including across stratified replicas.
func TestFeaturesMatchesParams(t *testing.T) {
	cfgs := GenerateSpace(SpaceSpec{Size: 600, Seed: 11})
	dst := make([]float32, len(cfgs)*NumParams)
	Features(cfgs, dst)
	for i, c := range cfgs {
		row := dst[i*NumParams : (i+1)*NumParams]
		for j, v := range c.Params() {
			if math.Float32bits(row[j]) != math.Float32bits(v) {
				t.Fatalf("config %d (%s) param %d: Features %v != Params %v", i, c.Name, j, row[j], v)
			}
		}
	}
}
