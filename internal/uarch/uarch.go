// Package uarch describes microarchitecture configurations: the knobs the
// paper samples with its gem5 configuration tool (§IV-C). A Config fully
// determines the behaviour of the timing simulator in internal/sim, and its
// normalized parameter vector is the input to the microarchitecture
// representation model used for design space exploration (§VI-A).
package uarch

import (
	"fmt"
	"math"
)

// CoreKind selects the pipeline model.
type CoreKind uint8

// Core kinds.
const (
	InOrder CoreKind = iota
	OutOfOrder
)

func (k CoreKind) String() string {
	if k == InOrder {
		return "inorder"
	}
	return "ooo"
}

// PredictorKind selects the branch predictor.
type PredictorKind uint8

// Branch predictor kinds.
const (
	PredStatic PredictorKind = iota // backward-taken / forward-not-taken
	PredBimodal
	PredGShare
	PredTournament
	NumPredictorKinds int = iota
)

func (p PredictorKind) String() string {
	switch p {
	case PredStatic:
		return "static"
	case PredBimodal:
		return "bimodal"
	case PredGShare:
		return "gshare"
	default:
		return "tournament"
	}
}

// PrefetchKind selects the L1D hardware prefetcher.
type PrefetchKind uint8

// Prefetcher kinds.
const (
	PrefetchNone PrefetchKind = iota
	PrefetchNextLine
	PrefetchStride
	NumPrefetchKinds int = iota
)

func (p PrefetchKind) String() string {
	switch p {
	case PrefetchNone:
		return "nopf"
	case PrefetchNextLine:
		return "nextline"
	default:
		return "stride"
	}
}

// DRAMKind selects the memory technology, which fixes the latency/bandwidth
// envelope the sampler draws from.
type DRAMKind uint8

// DRAM technologies.
const (
	DDR4 DRAMKind = iota
	LPDDR5
	GDDR5
	HBM
	NumDRAMKinds int = iota
)

func (d DRAMKind) String() string {
	switch d {
	case DDR4:
		return "DDR4"
	case LPDDR5:
		return "LPDDR5"
	case GDDR5:
		return "GDDR5"
	default:
		return "HBM"
	}
}

// FU describes one functional-unit pool.
type FU struct {
	Count     int  // number of units
	Latency   int  // cycles from issue to completion
	Pipelined bool // can accept a new op every cycle when true
}

// Cache describes one cache level.
type Cache struct {
	SizeKB    int
	Assoc     int
	LineBytes int
	Latency   int // hit latency in cycles
}

// Sets returns the number of sets implied by the geometry.
func (c Cache) Sets() int {
	lines := c.SizeKB * 1024 / c.LineBytes
	return lines / c.Assoc
}

// Config is a complete microarchitecture description (~40 scalar knobs).
type Config struct {
	Name string
	Core CoreKind

	FreqMHz int

	// Front end.
	FetchWidth    int
	FrontendDepth int // pipeline stages between fetch and dispatch
	Predictor     PredictorKind
	PredTableBits int // log2 entries of the predictor tables
	BTBBits       int // log2 entries of the branch target buffer
	RASEntries    int // return address stack depth

	// Out-of-order window (ignored by in-order cores).
	IssueWidth  int
	CommitWidth int
	ROBSize     int
	LQSize      int
	SQSize      int

	// Execution units.
	IntALU  FU
	IntMul  FU
	IntDiv  FU
	FPALU   FU
	FPMul   FU
	FPDiv   FU
	VecUnit FU
	MemPort FU // load/store ports; latency unused (cache provides it)

	// Memory hierarchy.
	L1I         Cache
	L1D         Cache
	L2          Cache
	L2Exclusive bool
	Prefetcher  PrefetchKind

	DRAM            DRAMKind
	DRAMLatencyNs   float64
	DRAMBandwidthGB float64
}

// Validate checks structural invariants the simulator relies on.
func (c *Config) Validate() error {
	chk := func(cond bool, format string, args ...any) error {
		if !cond {
			return fmt.Errorf("uarch %q: "+format, append([]any{c.Name}, args...)...)
		}
		return nil
	}
	checks := []error{
		chk(c.FreqMHz >= 200 && c.FreqMHz <= 6000, "frequency %d MHz out of range", c.FreqMHz),
		chk(c.FetchWidth >= 1 && c.FetchWidth <= 16, "fetch width %d out of range", c.FetchWidth),
		chk(c.FrontendDepth >= 1 && c.FrontendDepth <= 24, "frontend depth %d out of range", c.FrontendDepth),
		chk(c.IssueWidth >= 1 && c.IssueWidth <= 16, "issue width %d out of range", c.IssueWidth),
		chk(c.CommitWidth >= 1 && c.CommitWidth <= 16, "commit width %d out of range", c.CommitWidth),
		chk(c.Core == InOrder || c.ROBSize >= 8, "ROB size %d too small for OoO", c.ROBSize),
		chk(c.PredTableBits >= 4 && c.PredTableBits <= 20, "predictor table bits %d out of range", c.PredTableBits),
		chk(c.BTBBits >= 4 && c.BTBBits <= 16, "BTB bits %d out of range", c.BTBBits),
		chk(c.DRAMLatencyNs > 0 && c.DRAMBandwidthGB > 0, "DRAM parameters must be positive"),
	}
	for _, cache := range []struct {
		name string
		c    Cache
	}{{"L1I", c.L1I}, {"L1D", c.L1D}, {"L2", c.L2}} {
		checks = append(checks,
			chk(cache.c.SizeKB > 0, "%s size must be positive", cache.name),
			chk(cache.c.Assoc > 0, "%s associativity must be positive", cache.name),
			chk(cache.c.LineBytes >= 16 && (cache.c.LineBytes&(cache.c.LineBytes-1)) == 0,
				"%s line size %d must be a power of two >= 16", cache.name, cache.c.LineBytes),
			chk(cache.c.Sets() >= 1, "%s geometry yields zero sets", cache.name),
			chk(cache.c.Latency >= 1, "%s latency must be >= 1 cycle", cache.name),
		)
	}
	for _, fu := range []struct {
		name string
		f    FU
	}{{"IntALU", c.IntALU}, {"IntMul", c.IntMul}, {"IntDiv", c.IntDiv},
		{"FPALU", c.FPALU}, {"FPMul", c.FPMul}, {"FPDiv", c.FPDiv},
		{"VecUnit", c.VecUnit}, {"MemPort", c.MemPort}} {
		checks = append(checks,
			chk(fu.f.Count >= 1, "%s needs at least one unit", fu.name),
			chk(fu.f.Latency >= 1, "%s latency must be >= 1", fu.name))
	}
	for _, err := range checks {
		if err != nil {
			return err
		}
	}
	return nil
}

// CycleNs returns the duration of one clock cycle in nanoseconds.
func (c *Config) CycleNs() float64 { return 1000.0 / float64(c.FreqMHz) }

// NumParams is the length of the normalized parameter vector.
const NumParams = 41

// Params flattens the configuration into a normalized float32 vector, the
// input form consumed by the microarchitecture representation model. Sizes
// and counts are log2-scaled so that doubling a resource moves the feature
// by a constant step.
func (c *Config) Params() []float32 {
	p := make([]float32, NumParams)
	c.ParamsInto(p)
	return p
}

// ParamsInto fills dst (length NumParams) with the parameter vector of
// Params without allocating — the fill primitive design-space sweeps pack
// candidate feature matrices with. The element order is the Params contract;
// index comments below are the layout documentation.
//
//perfvec:hotpath
func (c *Config) ParamsInto(dst []float32) {
	if len(dst) != NumParams {
		panic("uarch: ParamsInto dst length mismatch")
	}
	dst[0] = float32(c.Core)
	dst[1] = float32(c.Predictor)
	dst[2] = float32(c.DRAM)
	dst[3] = log2f(float64(c.FreqMHz))
	dst[4] = float32(c.FetchWidth)
	dst[5] = float32(c.FrontendDepth)
	dst[6] = float32(c.IssueWidth)
	dst[7] = float32(c.CommitWidth)
	dst[8] = log2f(float64(max(c.ROBSize, 1)))
	dst[9] = log2f(float64(max(c.LQSize, 1)))
	dst[10] = log2f(float64(max(c.SQSize, 1)))
	dst[11] = float32(c.PredTableBits)
	dst[12] = float32(c.BTBBits)
	dst[13] = float32(c.RASEntries)
	dst[14], dst[15] = float32(c.IntALU.Count), float32(c.IntALU.Latency)
	dst[16], dst[17] = float32(c.IntMul.Count), float32(c.IntMul.Latency)
	dst[18], dst[19] = float32(c.IntDiv.Count), float32(c.IntDiv.Latency)
	dst[20], dst[21] = float32(c.FPALU.Count), float32(c.FPALU.Latency)
	dst[22], dst[23] = float32(c.FPMul.Count), float32(c.FPMul.Latency)
	dst[24], dst[25] = float32(c.FPDiv.Count), float32(c.FPDiv.Latency)
	dst[26], dst[27] = float32(c.VecUnit.Count), float32(c.MemPort.Count)
	dst[28], dst[29], dst[30] = log2f(float64(c.L1I.SizeKB)), float32(c.L1I.Assoc), float32(c.L1I.Latency)
	dst[31], dst[32], dst[33] = log2f(float64(c.L1D.SizeKB)), float32(c.L1D.Assoc), float32(c.L1D.Latency)
	dst[34], dst[35], dst[36] = log2f(float64(c.L2.SizeKB)), float32(c.L2.Assoc), float32(c.L2.Latency)
	dst[37] = boolToF(c.L2Exclusive)
	dst[38] = float32(c.Prefetcher)
	dst[39] = log2f(c.DRAMLatencyNs)
	dst[40] = log2f(c.DRAMBandwidthGB)
}

// Features fills the caller-provided packed row matrix dst — len(cfgs) rows
// of NumParams contiguous float32s, row-major — with the parameter vectors
// of cfgs. This is the allocation-free path batched sweeps build candidate
// matrices through; row i is exactly cfgs[i].Params().
//
//perfvec:hotpath
func Features(cfgs []*Config, dst []float32) {
	if len(dst) != len(cfgs)*NumParams {
		panic("uarch: Features dst length mismatch")
	}
	for i, c := range cfgs {
		c.ParamsInto(dst[i*NumParams : (i+1)*NumParams])
	}
}

func log2f(v float64) float32 { return float32(math.Log2(v)) }

func boolToF(b bool) float32 {
	if b {
		return 1
	}
	return 0
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
