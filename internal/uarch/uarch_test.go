package uarch

import (
	"testing"
	"testing/quick"
)

func TestPredefinedConfigsValidate(t *testing.T) {
	cfgs := Predefined()
	if len(cfgs) != 7 {
		t.Fatalf("predefined count = %d, want 7 (4 OoO + 3 in-order)", len(cfgs))
	}
	ooo, inorder := 0, 0
	for _, c := range cfgs {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
		if c.Core == OutOfOrder {
			ooo++
		} else {
			inorder++
		}
	}
	if ooo != 4 || inorder != 3 {
		t.Fatalf("core mix ooo=%d inorder=%d, want 4/3", ooo, inorder)
	}
}

func TestPredefinedNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Predefined() {
		if seen[c.Name] {
			t.Fatalf("duplicate predefined name %q", c.Name)
		}
		seen[c.Name] = true
	}
}

func TestSamplerProducesValidConfigs(t *testing.T) {
	f := func(seed int64) bool {
		s := NewSampler(seed)
		for i := 0; i < 4; i++ {
			if err := s.Sample(OutOfOrder).Validate(); err != nil {
				t.Logf("ooo: %v", err)
				return false
			}
			if err := s.Sample(InOrder).Validate(); err != nil {
				t.Logf("inorder: %v", err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSamplerDeterministic(t *testing.T) {
	a := NewSampler(42).Sample(OutOfOrder)
	b := NewSampler(42).Sample(OutOfOrder)
	if a.Name != b.Name {
		t.Fatalf("same seed produced different configs: %q vs %q", a.Name, b.Name)
	}
	pa, pb := a.Params(), b.Params()
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("param %d differs: %v vs %v", i, pa[i], pb[i])
		}
	}
}

func TestSampleSetMix(t *testing.T) {
	cfgs := NewSampler(7).SampleSet(70)
	if len(cfgs) != 70 {
		t.Fatalf("got %d configs, want 70", len(cfgs))
	}
	inorder := 0
	for _, c := range cfgs {
		if c.Core == InOrder {
			inorder++
		}
	}
	if inorder != 10 {
		t.Fatalf("in-order share = %d/70, want 10 (paper's 60/10 split)", inorder)
	}
}

func TestTrainingSetIncludesPredefined(t *testing.T) {
	cfgs := TrainingSet(1, 70)
	if len(cfgs) != 77 {
		t.Fatalf("training set size = %d, want 77 (70 sampled + 7 predefined)", len(cfgs))
	}
}

func TestParamsLengthAndDeterminism(t *testing.T) {
	for _, c := range Predefined() {
		p := c.Params()
		if len(p) != NumParams {
			t.Fatalf("%s: params length %d, want %d", c.Name, len(p), NumParams)
		}
	}
}

func TestParamsDistinguishConfigs(t *testing.T) {
	a := A7Like().Params()
	b := oooServer().Params()
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("distinct configs produced identical parameter vectors")
	}
}

func TestCacheSets(t *testing.T) {
	c := Cache{SizeKB: 32, Assoc: 4, LineBytes: 64}
	if got := c.Sets(); got != 128 {
		t.Fatalf("Sets = %d, want 128", got)
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	c := A7Like()
	c.FreqMHz = 50
	if err := c.Validate(); err == nil {
		t.Fatal("expected validation failure for 50 MHz")
	}
	c = A7Like()
	c.L1D.LineBytes = 48 // not a power of two
	if err := c.Validate(); err == nil {
		t.Fatal("expected validation failure for non-power-of-two line")
	}
	c = A7Like()
	c.IntALU.Count = 0
	if err := c.Validate(); err == nil {
		t.Fatal("expected validation failure for zero ALUs")
	}
}

func TestCycleNs(t *testing.T) {
	c := A7Like()
	c.FreqMHz = 2000
	if got := c.CycleNs(); got != 0.5 {
		t.Fatalf("CycleNs = %v, want 0.5", got)
	}
}
